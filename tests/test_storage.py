"""Tests for columns, tables, join schemas, statistics and the catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    Column,
    ColumnType,
    Database,
    EquiDepthHistogram,
    JoinRelation,
    JoinSchema,
    Table,
    analyze_column,
    analyze_table,
)


class TestColumn:
    def test_int_inference(self):
        col = Column("a", [1, 2, 3])
        assert col.ctype is ColumnType.INT
        assert col.is_numeric

    def test_float_inference(self):
        assert Column("a", [1.5, 2.5]).ctype is ColumnType.FLOAT

    def test_string_inference_and_dictionary(self):
        col = Column("s", ["x", "y", "x"])
        assert col.ctype is ColumnType.STRING
        assert sorted(col.dictionary) == ["x", "y"]
        assert col.n_distinct() == 2
        np.testing.assert_array_equal(col.dictionary[col.codes], ["x", "y", "x"])

    def test_numeric_values_on_string_raises(self):
        with pytest.raises(TypeError):
            Column("s", ["a"]).numeric_values()

    def test_take_and_filter(self):
        col = Column("a", [10, 20, 30, 40])
        np.testing.assert_array_equal(col.take(np.array([2, 0])).values, [30, 10])
        np.testing.assert_array_equal(col.filter(np.array([True, False, True, False])).values, [10, 30])


class TestTable:
    def _table(self):
        return Table.from_dict("t", {"id": [1, 2, 3], "v": [1.0, 2.0, 3.0], "s": ["a", "b", "a"]}, primary_key="id")

    def test_basic_properties(self):
        t = self._table()
        assert t.num_rows == 3
        assert t.num_columns == 3
        assert "id" in t
        assert t.numeric_columns() == ["id", "v"]
        assert t.string_columns() == ["s"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column("a", [1]), Column("a", [2])])

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [])

    def test_missing_primary_key_rejected(self):
        with pytest.raises(KeyError):
            Table("bad", [Column("a", [1])], primary_key="zzz")

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._table().column("nope")

    def test_filter_take(self):
        t = self._table()
        filtered = t.filter(np.array([True, False, True]))
        assert filtered.num_rows == 2
        np.testing.assert_array_equal(filtered.column("id").values, [1, 3])
        taken = t.take(np.array([1, 1]))
        np.testing.assert_array_equal(taken.column("s").values, ["b", "b"])

    def test_filter_bad_mask_shape(self):
        with pytest.raises(ValueError):
            self._table().filter(np.array([True]))

    def test_zero_row_table_allowed(self):
        t = Table.from_dict("empty", {"a": np.array([], dtype=np.int64)})
        assert t.num_rows == 0
        assert t.filter(np.array([], dtype=bool)).num_rows == 0


class TestJoinSchema:
    def _schema(self):
        return JoinSchema([
            JoinRelation("fact", "d1_id", "dim1", "id"),
            JoinRelation("fact", "d2_id", "dim2", "id"),
            JoinRelation("dim2", "d3_id", "dim3", "id"),
        ])

    def test_tables_and_neighbors(self):
        s = self._schema()
        assert s.tables == ["dim1", "dim2", "dim3", "fact"]
        assert s.neighbors("fact") == ["dim1", "dim2"]

    def test_relation_between_orients_result(self):
        s = self._schema()
        rel = s.relation_between("dim1", "fact")
        assert rel.left == "dim1" and rel.right == "fact"
        assert rel.left_column == "id" and rel.right_column == "d1_id"

    def test_relation_between_missing(self):
        assert self._schema().relation_between("dim1", "dim3") is None

    def test_connectivity(self):
        s = self._schema()
        assert s.is_connected(["fact", "dim1"])
        assert s.is_connected(["fact", "dim2", "dim3"])
        assert not s.is_connected(["dim1", "dim3"])
        assert not s.is_connected([])
        assert not s.is_connected(["ghost"])

    def test_adjacency_matrix(self):
        s = self._schema()
        adj = s.adjacency_matrix(["fact", "dim2", "dim3"])
        assert adj[0, 1] and adj[1, 2]
        assert not adj[0, 2]
        assert not adj.diagonal().any()

    def test_spanning_join_order_is_legal(self):
        s = self._schema()
        order = s.spanning_join_order(["dim3", "dim2", "fact", "dim1"], start="fact")
        assert order[0] == "fact"
        joined = {order[0]}
        for table in order[1:]:
            assert any(s.are_joinable(table, j) for j in joined)
            joined.add(table)

    def test_spanning_join_order_disconnected_raises(self):
        with pytest.raises(ValueError):
            self._schema().spanning_join_order(["dim1", "dim3"])


class TestHistogram:
    def test_selectivity_le_monotone(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000)
        hist = EquiDepthHistogram.build(values, num_buckets=16)
        points = np.linspace(-3, 3, 25)
        sels = [hist.selectivity_le(p) for p in points]
        assert all(b >= a - 1e-12 for a, b in zip(sels, sels[1:]))

    def test_selectivity_matches_empirical(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=10000)
        hist = EquiDepthHistogram.build(values, num_buckets=32)
        for threshold in (10, 50, 90):
            true = (values <= threshold).mean()
            assert hist.selectivity_le(threshold) == pytest.approx(true, abs=0.02)

    def test_out_of_range(self):
        hist = EquiDepthHistogram.build(np.arange(100.0), num_buckets=8)
        assert hist.selectivity_le(-5) == 0.0
        assert hist.selectivity_le(1000) == 1.0

    def test_range_selectivity(self):
        hist = EquiDepthHistogram.build(np.arange(1000.0), num_buckets=10)
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)
        assert hist.selectivity_range(250.0, 749.0) == pytest.approx(0.5, abs=0.02)

    def test_empty_histogram(self):
        hist = EquiDepthHistogram.build(np.array([]))
        assert hist.selectivity_le(0.0) == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200), st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_selectivity_always_in_unit_interval(self, values, probe):
        hist = EquiDepthHistogram.build(np.array(values), num_buckets=8)
        sel = hist.selectivity_le(probe)
        assert 0.0 <= sel <= 1.0


class TestStatistics:
    def test_analyze_column_numeric(self):
        col = Column("a", np.concatenate([np.zeros(90), np.arange(10)]))
        stats = analyze_column(col, num_mcv=3)
        assert stats.num_rows == 100
        assert stats.mcv_values[0] == 0.0
        assert stats.mcv_fractions[0] == pytest.approx(0.91)

    def test_equality_selectivity_mcv_hit(self):
        col = Column("a", np.concatenate([np.zeros(90), np.arange(1, 11)]))
        stats = analyze_column(col, num_mcv=2)
        assert stats.equality_selectivity(0.0) == pytest.approx(0.9)

    def test_equality_selectivity_residual(self):
        col = Column("a", np.concatenate([np.zeros(90), np.arange(1, 11)]))
        stats = analyze_column(col, num_mcv=1)
        residual = stats.equality_selectivity(5.0)
        assert 0.0 < residual < 0.1

    def test_analyze_table(self):
        t = Table.from_dict("t", {"a": [1, 2, 3], "s": ["x", "x", "y"]})
        stats = analyze_table(t)
        assert stats.num_rows == 3
        assert stats.column("s").n_distinct == 2
        assert stats.column("a").histogram is not None
        assert stats.column("s").histogram is None
        with pytest.raises(KeyError):
            stats.column("zzz")


class TestDatabase:
    def _db(self):
        fact = Table.from_dict("fact", {"id": [1, 2, 3], "dim_id": [1, 1, 2]}, primary_key="id")
        dim = Table.from_dict("dim", {"id": [1, 2], "v": [0.5, 0.7]}, primary_key="id")
        db = Database("testdb", [fact, dim])
        db.add_join(JoinRelation("fact", "dim_id", "dim", "id"))
        return db

    def test_lookup(self):
        db = self._db()
        assert db.table_names == ["dim", "fact"]
        assert "fact" in db
        assert db.table("dim").num_rows == 2
        with pytest.raises(KeyError):
            db.table("ghost")

    def test_duplicate_table_rejected(self):
        t = Table.from_dict("x", {"a": [1]})
        with pytest.raises(ValueError):
            Database("d", [t, t])

    def test_add_join_validates_columns(self):
        db = self._db()
        with pytest.raises(KeyError):
            db.add_join(JoinRelation("fact", "nope", "dim", "id"))

    def test_statistics_lazy(self):
        db = self._db()
        stats = db.statistics("fact")
        assert stats.num_rows == 3

    def test_analyze_all(self):
        db = self._db()
        db.analyze()
        assert db.statistics("dim").column("v").histogram is not None

    def test_total_rows(self):
        assert self._db().total_rows() == 5

    def test_isolated_table_in_join_schema(self):
        lonely = Table.from_dict("lonely", {"a": [1]})
        db = Database("d", [lonely])
        assert "lonely" in db.join_schema.tables
