"""Concurrency stress tests for the serving layer.

Many client threads hammer the plan cache and the request queue at
once.  The invariants under fire:

- **no lost or duplicated responses** — every submitted request gets
  exactly one answer (or exactly one backpressure rejection);
- **no cross-talk** — each answer equals the direct
  ``predict_join_orders`` result for *that* request's query, even while
  identical and different queries interleave in the same batches;
- **the LRU bound holds** — the plan cache never exceeds its configured
  size, no matter how many threads insert concurrently.
"""

import random
import threading

import pytest

from repro.analysis import LockMonitor, LockOrderError, instrument_model, instrument_service
from repro.core import ModelConfig, MTMLFQO
from repro.core.encoders import DatabaseFeaturizer
from repro.datagen import generate_database
from repro.serve import (
    OptimizerService,
    PlanCache,
    ServeConfig,
    ServiceOverloadedError,
)
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)

pytestmark = pytest.mark.threaded

NUM_THREADS = 12
REQUESTS_PER_THREAD = 25


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=12, num_tables=5, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, SMALL)
    feat.train_encoders(queries_per_table=4, epochs=2)
    return feat


@pytest.fixture(scope="module")
def pool(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=13))
    items = QueryLabeler(db).label_many(generator.generate(24), with_optimal_order=False)
    assert len(items) >= 10
    return items[:10]


class TestPlanCacheUnderContention:
    def test_lru_bound_holds_under_concurrent_writes(self):
        cache = PlanCache(maxsize=7)
        violations = []

        def hammer(seed):
            rng = random.Random(seed)
            for _ in range(500):
                key = ("key", rng.randrange(40))
                if rng.random() < 0.5:
                    cache.put(key, ["t1", "t2"])
                else:
                    cache.get(key)
                if len(cache) > 7:
                    violations.append(len(cache))

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not violations
        assert len(cache) <= 7
        assert cache.hits + cache.misses > 0

    def test_values_are_isolated_from_callers(self):
        cache = PlanCache(maxsize=2)
        order = ["a", "b"]
        cache.put(("k",), order)
        order.append("mutated")
        fetched = cache.get(("k",))
        assert fetched == ["a", "b"]
        fetched.append("mutated-again")
        assert cache.get(("k",)) == ["a", "b"]

    def test_disabled_cache_never_stores(self):
        cache = PlanCache(maxsize=0)
        cache.put(("k",), ["a"])
        assert cache.get(("k",)) is None
        assert len(cache) == 0
        # Off is not thrashing: a disabled cache reports no activity.
        assert cache.hits == 0 and cache.misses == 0


class TestServiceUnderStress:
    def test_no_lost_or_duplicated_responses(self, db, featurizer, pool):
        """A small cache (forced eviction churn) + many threads, duplicates."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        direct = model.predict_join_orders(db.name, pool, beam_width=2)
        expected = {index: order for index, order in enumerate(direct)}

        cache_size = 5  # smaller than the pool: constant eviction pressure
        config = ServeConfig(
            max_batch_size=8, max_wait_ms=1.0, plan_cache_size=cache_size, beam_width=2
        )
        service = OptimizerService(model, db.name, config)
        # Runtime lock-order checking rides along: every acquisition of
        # the service mutex and the model's inference lock feeds the
        # global order graph, so an inversion introduced in either layer
        # fails this stress test even if the scheduler never deadlocks.
        lock_monitor = LockMonitor()
        instrument_model(model, lock_monitor)
        instrument_service(service, lock_monitor)
        responses: list[list[tuple[int, list[str]]]] = [[] for _ in range(NUM_THREADS)]
        errors: list[BaseException] = []
        bound_violations: list[int] = []
        stop_monitor = threading.Event()

        def monitor():
            while not stop_monitor.is_set():
                size = len(service.cache)
                if size > cache_size:
                    bound_violations.append(size)
                stop_monitor.wait(0.001)

        def client(slot):
            rng = random.Random(slot)
            try:
                for _ in range(REQUESTS_PER_THREAD):
                    index = rng.randrange(len(pool))
                    responses[slot].append((index, service.optimize(pool[index])))
            except BaseException as error:
                errors.append(error)

        monitor_thread = threading.Thread(target=monitor)
        with service:
            monitor_thread.start()
            threads = [threading.Thread(target=client, args=(slot,)) for slot in range(NUM_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stop_monitor.set()
            monitor_thread.join()
            report = service.report()

        assert not errors, errors
        assert not bound_violations, f"LRU bound exceeded: {bound_violations}"
        total = NUM_THREADS * REQUESTS_PER_THREAD
        received = sum(len(slot_responses) for slot_responses in responses)
        assert received == total  # exactly one response per request
        for slot_responses in responses:
            for index, order in slot_responses:
                assert order == expected[index]  # and never another query's order
        assert report.completed == total
        assert report.rejected == 0 and report.failed == 0
        assert report.cache_hits > 0  # duplicates did hit
        assert len(service.cache) <= cache_size
        lock_monitor.assert_clean()  # no lock-order inversion under fire
        # The drain loop demonstrably ran under tracing.
        assert any("_mutex" in src for src in lock_monitor.edges()) or lock_monitor.edges() == {}

    def test_replica_pool_loses_and_duplicates_nothing(self, db, featurizer, pool):
        """Same lost/duplicate contract as above, but with a 4-replica
        pool: four drain workers race on the shared queue and cache
        while decoding on independent replicas, plus hot swaps landing
        mid-traffic — every request still gets exactly one response,
        bit-identical to a direct call on one of the served models."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        direct = model.predict_join_orders(db.name, pool, beam_width=2)
        expected = {index: order for index, order in enumerate(direct)}

        config = ServeConfig(
            num_replicas=4,
            max_batch_size=4,
            max_wait_ms=1.0,
            plan_cache_size=5,  # smaller than the pool: eviction churn
            beam_width=2,
        )
        service = OptimizerService(model, db.name, config)
        lock_monitor = LockMonitor()
        instrument_model(model, lock_monitor)
        instrument_service(service, lock_monitor)
        responses: list[list[tuple[int, list[str]]]] = [[] for _ in range(NUM_THREADS)]
        errors: list[BaseException] = []

        def client(slot):
            rng = random.Random(1000 + slot)
            try:
                for _ in range(REQUESTS_PER_THREAD):
                    index = rng.randrange(len(pool))
                    responses[slot].append((index, service.optimize(pool[index])))
            except BaseException as error:
                errors.append(error)

        with service:
            threads = [
                threading.Thread(target=client, args=(slot,)) for slot in range(NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            # Swap to a bit-identical clone mid-traffic: replies stay
            # byte-comparable to `direct` while the whole replica *set*
            # (all four slots) flips under load.
            service.swap_model(model.clone_for_inference())
            for thread in threads:
                thread.join()
            report = service.report()

        assert not errors, errors
        total = NUM_THREADS * REQUESTS_PER_THREAD
        received = sum(len(slot_responses) for slot_responses in responses)
        assert received == total  # exactly one response per request
        for slot_responses in responses:
            for index, order in slot_responses:
                assert order == expected[index]
        assert report.completed == total
        assert report.rejected == 0 and report.failed == 0
        assert report.num_replicas == 4
        assert sum(report.replica_batches) == report.batches
        assert sum(report.replica_requests) == report.batched_requests
        # With 12 clients racing 4 workers, at least one non-primary
        # replica must have drained work.
        assert sum(report.replica_batches[1:]) > 0
        lock_monitor.assert_clean()

    def test_seeded_lock_inversion_is_caught_under_stress(self):
        """Meta-test for the runtime detector: stress traffic with a
        consistent A→B order, then one rogue B→A pair — the detector
        must report the cycle even though no deadlock ever struck (the
        phases are sequenced so the test cannot actually hang)."""
        monitor = LockMonitor()
        lock_a = monitor.lock("service-mutex")
        lock_b = monitor.lock("infer-lock")

        def disciplined():
            for _ in range(200):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=disciplined) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        monitor.assert_clean()  # the disciplined phase is cycle-free

        def rogue():
            with lock_b:
                with lock_a:
                    pass

        inverted = threading.Thread(target=rogue)
        inverted.start()
        inverted.join()
        with pytest.raises(LockOrderError, match="lock-order inversion"):
            monitor.check()

    def test_backpressure_storm_accounts_for_every_request(self, db, featurizer, pool):
        """Flood a tiny queue: completed + rejected must equal submitted."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        config = ServeConfig(
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue_depth=2,
            plan_cache_size=0,
            beam_width=1,
        )
        outcomes: list[str] = []
        outcomes_lock = threading.Lock()
        num_clients = 16

        def client(slot):
            item = pool[slot % len(pool)]
            try:
                order = service.optimize(item, timeout=30.0)
                assert sorted(order) == sorted(item.query.tables)
                outcome = "completed"
            except ServiceOverloadedError:
                outcome = "rejected"
            with outcomes_lock:
                outcomes.append(outcome)

        with OptimizerService(model, db.name, config) as service:
            threads = [threading.Thread(target=client, args=(slot,)) for slot in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report = service.report()

        assert len(outcomes) == num_clients
        completed = outcomes.count("completed")
        rejected = outcomes.count("rejected")
        assert completed + rejected == num_clients
        assert completed >= 1  # somebody got through
        assert report.completed == completed
        assert report.rejected == rejected

    def test_repeated_hot_swaps_under_load(self, db, featurizer, pool):
        """16 clients hammer the service while the model is hot-swapped
        back and forth.  Every request gets exactly one answer, every
        answer is one of the two models' bit-exact direct results, and
        traffic after the final swap is served by the final model only
        (no stale pre-swap plans, no pre-swap cache hits)."""
        from repro.core import JointTrainer

        model_a = MTMLFQO(SMALL)
        model_a.attach_featurizer(db.name, featurizer)
        model_b = MTMLFQO(SMALL)
        model_b.attach_featurizer(db.name, featurizer)
        JointTrainer(model_b).train(
            [(db.name, item) for item in pool], epochs=2, batch_size=4
        )
        direct_a = model_a.predict_join_orders(db.name, pool, beam_width=2)
        direct_b = model_b.predict_join_orders(db.name, pool, beam_width=2)
        assert direct_a != direct_b

        config = ServeConfig(max_batch_size=8, max_wait_ms=1.0, plan_cache_size=5, beam_width=2)
        num_clients, rounds, num_swaps = 16, 20, 4
        answers: list[list[tuple[int, list[str]]]] = [[] for _ in range(num_clients)]
        errors: list[BaseException] = []

        with OptimizerService(model_a, db.name, config) as service:
            def client(slot):
                rng = random.Random(slot)
                try:
                    for _ in range(rounds):
                        index = rng.randrange(len(pool))
                        answers[slot].append((index, service.optimize(pool[index])))
                except BaseException as error:
                    errors.append(error)

            threads = [threading.Thread(target=client, args=(slot,)) for slot in range(num_clients)]
            for thread in threads:
                thread.start()
            for swap_index in range(num_swaps):
                threading.Event().wait(0.01)
                service.swap_model(model_b if swap_index % 2 == 0 else model_a)
            for thread in threads:
                thread.join()
            final = model_b if (num_swaps - 1) % 2 == 0 else model_a
            final_direct = direct_b if final is model_b else direct_a
            post = [service.optimize(item) for item in pool]
            report = service.report()

        assert not errors, errors
        received = sum(len(slot_answers) for slot_answers in answers)
        assert received == num_clients * rounds  # no lost or duplicated responses
        for slot_answers in answers:
            for index, order in slot_answers:
                assert order in (direct_a[index], direct_b[index])
        assert post == final_direct  # post-swap traffic: final model only
        assert report.swaps == num_swaps
        assert report.failed == 0 and report.rejected == 0

    def test_stop_drains_inflight_requests(self, db, featurizer, pool):
        """stop() answers everything already queued before returning."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        config = ServeConfig(max_batch_size=4, max_wait_ms=20.0, plan_cache_size=0, beam_width=1)
        service = OptimizerService(model, db.name, config).start()
        results: dict[int, list[str]] = {}

        def client(index):
            results[index] = service.optimize(pool[index])

        threads = [threading.Thread(target=client, args=(index,)) for index in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(400):
            if service.queue_depth + len(results) >= 4:
                break
            threading.Event().wait(0.002)
        service.stop()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        direct = model.predict_join_orders(db.name, pool[:4], beam_width=1)
        assert [results[index] for index in range(4)] == direct
