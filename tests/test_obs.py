"""Unified telemetry tests: metrics, traces, SLOs, exporters, wiring.

The load-bearing contracts, property-tested where randomized inputs
matter:

- **merge exactness** — per-shard histogram recording then merging is
  indistinguishable from recording everything into one histogram
  (bucket counts, count/min/max and percentiles exactly; sums up to
  float addition order);
- **percentile guarantee** — the reported quantile is never below the
  true nearest-rank sample and lies in the same bucket;
- **thread safety** — 16 concurrent recorders lose nothing;
- **disabled path** — a disabled tracer mints trace ID 0, hands out the
  shared no-op span, and records nothing;
- **end-to-end** — a service run with telemetry produces a complete
  queue->batch->decode trace, per-replica histograms, and SLO state.
"""

import json
import math
import threading
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LockMonitor
from repro.core import ModelConfig, MTMLFQO
from repro.core.encoders import DatabaseFeaturizer
from repro.datagen import generate_database
from repro.nn import kernels
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    NOOP_SPAN,
    MetricsRegistry,
    SLOObjective,
    SLOTracker,
    Telemetry,
    TelemetryConfig,
    TraceRecorder,
    read_snapshot,
    write_snapshot,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.export import render_metrics, render_slo, render_traces
from repro.obs.metrics import Histogram
from repro.serve import OptimizerService, ServeConfig
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)

BOUNDS = (0.001, 0.01, 0.1, 1.0)

samples = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def record_all(values, bounds=BOUNDS):
    h = Histogram("h", {}, bounds=bounds)
    for v in values:
        h.observe(v)
    return h


# ---------------------------------------------------------------------------
# histograms: merge exactness + percentile guarantee
# ---------------------------------------------------------------------------
class TestHistogramProperties:
    @given(samples, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_sharded_recording_merges_to_single_recording(self, values, shards):
        single = record_all(values)
        merged = Histogram("h", {}, bounds=BOUNDS)
        for shard_index in range(shards):
            shard = record_all(values[shard_index::shards])
            merged.merge(shard)
        assert merged.bucket_counts() == single.bucket_counts()
        a, b = merged.summary(), single.summary()
        assert (a.count, a.min, a.max) == (b.count, b.min, b.max)
        assert (a.p50, a.p95, a.p99) == (b.p50, b.p95, b.p99)
        # Sums differ only by float addition order across shards.
        assert a.sum == pytest.approx(b.sum, rel=1e-9, abs=1e-12)

    @given(samples, st.sampled_from([50.0, 90.0, 95.0, 99.0, 100.0]))
    @settings(max_examples=150, deadline=None)
    def test_percentile_at_least_true_nearest_rank_and_same_bucket(self, values, q):
        h = record_all(values)
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        true = sorted(values)[rank - 1]
        reported = h.percentile(q)
        assert reported >= true
        assert bisect_left(BOUNDS, reported) == bisect_left(BOUNDS, true)

    def test_overflow_bucket_reports_observed_max(self):
        h = record_all([0.5, 2.0, 3.0, 4.0])
        assert h.percentile(100.0) == 4.0
        assert h.bucket_counts()[-1] == 3  # above the 1.0 bound

    def test_nan_rejected_and_empty_is_none(self):
        h = Histogram("h", {}, bounds=BOUNDS)
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        assert h.percentile(50.0) is None
        assert h.summary() is None

    def test_mismatched_bounds_merge_raises(self):
        a = Histogram("h", {}, bounds=BOUNDS)
        b = Histogram("h", {}, bounds=(0.5, 1.5))
        with pytest.raises(ValueError):
            a.merge(b)


class TestConcurrentRecording:
    @pytest.mark.threaded
    def test_16_threads_lose_nothing(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", bounds=BOUNDS)
        c = registry.counter("done")
        per_thread = 500

        def worker(seed):
            for i in range(per_thread):
                h.observe((seed * per_thread + i) % 100 / 50.0)
                c.inc()

        threads = [
            threading.Thread(target=worker, args=(t,), daemon=True) for t in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 16 * per_thread
        assert c.value == 16 * per_thread
        assert sum(h.bucket_counts()) == 16 * per_thread


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x", {"k": "1"})
        assert registry.counter("x", {"k": "1"}) is a
        assert registry.counter("x", {"k": "2"}) is not a
        assert registry.find("x", {"k": "1"}) is a
        assert registry.find("missing") is None

    def test_kind_and_bounds_mismatch_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        registry.histogram("h", bounds=BOUNDS)
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(0.5, 1.5))

    def test_counter_rejects_negative_and_gauge_keeps_max(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        g = registry.gauge("g")
        g.update_max(4)
        g.update_max(2)
        assert g.value == 4

    def test_registry_merge_adds_counters_and_creates_absent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(7)
        b.histogram("h", bounds=BOUNDS).observe(0.05)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 7
        assert a.histogram("h", bounds=BOUNDS).count == 1

    def test_tick_appends_series_points(self):
        registry = MetricsRegistry()
        c = registry.counter("c")
        c.inc()
        registry.tick(now=1.0)
        registry.tick(now=2.0)
        assert [p[0] for p in c.series.points()] == [1.0, 2.0]


# ---------------------------------------------------------------------------
# trace recorder
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_context_manager_records_with_attrs_and_thread(self):
        tracer = TraceRecorder()
        tid = tracer.new_trace()
        with tracer.span(tid, "decode") as span:
            span.set("queries", 3)
        (span,) = tracer.trace(tid)
        assert span.name == "decode"
        assert span.attrs == {"queries": 3}
        assert span.thread == threading.current_thread().name
        assert span.duration_s >= 0

    def test_exception_inside_span_still_records_with_error_attr(self):
        tracer = TraceRecorder()
        tid = tracer.new_trace()
        with pytest.raises(RuntimeError):
            with tracer.span(tid, "work"):
                raise RuntimeError("boom")
        (span,) = tracer.trace(tid)
        assert span.attrs["error"] == "RuntimeError"

    def test_disabled_path_mints_zero_and_records_nothing(self):
        tracer = TraceRecorder(enabled=False)
        assert tracer.new_trace() == 0
        assert tracer.span(1, "x") is NOOP_SPAN
        assert tracer.span(0, "x") is NOOP_SPAN
        with tracer.span(tracer.new_trace(), "x") as span:
            span.set("k", 1)
        tracer.record(1, "x", 0.0, 1.0)
        tracer.event(1, "x")
        assert tracer.spans() == []
        tracer.enable()
        assert tracer.new_trace() == 1

    def test_untraced_id_zero_is_never_recorded(self):
        tracer = TraceRecorder()
        tracer.event(0, "x")
        assert tracer.spans() == []

    def test_ring_bound_drops_oldest_and_counts(self):
        tracer = TraceRecorder(capacity=4)
        tid = tracer.new_trace()
        for i in range(7):
            tracer.event(tid, f"e{i}")
        assert len(tracer.spans()) == 4
        assert tracer.dropped == 3
        assert [s.name for s in tracer.trace(tid)] == ["e3", "e4", "e5", "e6"]

    @pytest.mark.threaded
    def test_cross_thread_spans_land_on_one_trace(self):
        tracer = TraceRecorder()
        tid = tracer.new_trace()

        def worker():
            with tracer.span(tid, "worker.step"):
                pass

        thread = threading.Thread(target=worker, name="obs-worker", daemon=True)
        thread.start()
        thread.join()
        with tracer.span(tid, "client.step"):
            pass
        spans = tracer.trace(tid)
        assert {s.name for s in spans} == {"worker.step", "client.step"}
        assert {s.thread for s in spans} == {"obs-worker", threading.current_thread().name}
        assert tracer.complete_traces({"worker.step", "client.step"}) == [tid]


# ---------------------------------------------------------------------------
# SLO tracking
# ---------------------------------------------------------------------------
class TestSLOTracker:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLOObjective(latency_s=0.0)
        with pytest.raises(ValueError):
            SLOObjective(target=1.0)
        assert SLOObjective(target=0.95).budget == pytest.approx(0.05)

    def test_burn_rate_and_breach(self):
        tracker = SLOTracker(SLOObjective(latency_s=0.1, target=0.9), window=10)
        for _ in range(8):
            tracker.record("a", 0.05)  # meets
        for _ in range(2):
            tracker.record("a", 0.5)  # violates
        status = tracker.status("a")
        # 2/10 violations against a 10% budget: burning at exactly 2x.
        assert status.violation_rate == pytest.approx(0.2)
        assert status.burn_rate == pytest.approx(2.0)
        assert status.breached
        assert tracker.breached() == ("a",)

    def test_window_eviction_forgives_old_violations(self):
        tracker = SLOTracker(SLOObjective(latency_s=0.1, target=0.9), window=4)
        for _ in range(4):
            tracker.record("a", 0.5)
        assert tracker.status("a").breached
        for _ in range(4):
            tracker.record("a", 0.05)
        status = tracker.status("a")
        assert status.violations == 0
        assert not status.breached
        assert status.total == 8
        assert tracker.breached() == ()

    def test_tenants_are_independent(self):
        tracker = SLOTracker(SLOObjective(latency_s=0.1, target=0.9), window=10)
        tracker.record("fast", 0.01)
        for _ in range(5):
            tracker.record("slow", 9.0)
        assert tracker.breached() == ("slow",)
        assert not tracker.status("fast").breached

    def test_set_objective_resets_window(self):
        tracker = SLOTracker(window=10)
        tracker.record("a", 9.0)
        tracker.set_objective("a", SLOObjective(latency_s=10.0, target=0.5))
        status = tracker.status("a")
        assert status.window == 0 and status.total == 0


# ---------------------------------------------------------------------------
# export + CLI
# ---------------------------------------------------------------------------
class TestExport:
    def _populated(self):
        tel = Telemetry(TelemetryConfig(slo_latency_s=0.1))
        tel.registry.counter("serve.completed").inc(3)
        tel.registry.histogram("serve.latency_s").observe(0.02)
        tid = tel.tracer.new_trace()
        with tel.tracer.span(tid, "decode") as span:
            span.set("replica", 0)
        tel.tracer.event(tid, "cache.fill")
        tel.slo.record("tenant-a", 0.02)
        tel.slo.record("tenant-a", 0.5)
        return tel

    def test_snapshot_round_trip(self, tmp_path):
        tel = self._populated()
        path = tmp_path / "snap.json"
        write_snapshot(path, tel.snapshot())
        payload = read_snapshot(path)
        assert payload["enabled"] is True
        names = {m["name"] for m in payload["metrics"]}
        assert {"serve.completed", "serve.latency_s"} <= names
        assert any(s["name"] == "decode" for s in payload["traces"]["spans"])
        assert payload["slo"]["tenants"]["tenant-a"]["violations"] == 1

    def test_snapshot_version_is_validated(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError):
            read_snapshot(path)

    def test_renderers_cover_all_sections(self):
        payload = self._populated().snapshot()
        assert "serve.latency_s" in render_metrics(payload)
        assert "tenant-a" in render_slo(payload)
        traces = render_traces(payload)
        assert "decode" in traces and "cache.fill" in traces

    def test_cli_renders_and_fails_cleanly(self, tmp_path, capsys):
        tel = self._populated()
        path = tmp_path / "snap.json"
        write_snapshot(path, tel.snapshot())
        assert obs_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.completed" in out and "tenant-a" in out
        assert obs_main([str(path), "--section", "slo"]) == 0
        assert obs_main([str(path), "--format", "json"]) == 0
        assert obs_main([str(tmp_path / "missing.json")]) == 1
        assert "cannot read" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# profiler + lock-monitor bridges
# ---------------------------------------------------------------------------
class TestInstrumentationBridges:
    def test_kernel_profile_record_into_accumulates(self):
        import numpy as np

        registry = MetricsRegistry()
        a = np.ones((4, 4), dtype=np.float64)
        with kernels.profiled() as profile:
            kernels.matmul(a, a)
        profile.record_into(registry)
        with kernels.profiled() as profile:
            kernels.matmul(a, a)
        profile.record_into(registry)
        calls = registry.find("kernel.calls", {"op": "matmul"})
        seconds = registry.find("kernel.seconds", {"op": "matmul"})
        assert calls.value == 2
        assert seconds.value > 0

    @pytest.mark.threaded
    def test_lock_monitor_records_hold_and_wait_histograms(self):
        registry = MetricsRegistry()
        monitor = LockMonitor(registry=registry)
        lock = monitor.lock("svc._mutex")
        with lock:
            pass
        with lock:
            pass
        hold = registry.find("lock.hold_s", {"lock": "svc._mutex"})
        wait = registry.find("lock.wait_s", {"lock": "svc._mutex"})
        assert hold.count == 2
        assert wait.count == 2


# ---------------------------------------------------------------------------
# end-to-end: service + telemetry
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def db():
    return generate_database(seed=11, num_tables=5, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=3))
    items = QueryLabeler(db).label_many(generator.generate(18), with_optimal_order=False)
    assert len(items) >= 8
    return items[:8]


@pytest.fixture(scope="module")
def model(db):
    featurizer = DatabaseFeaturizer(db, SMALL)
    featurizer.train_encoders(queries_per_table=4, epochs=2)
    model = MTMLFQO(SMALL)
    model.attach_featurizer(db.name, featurizer)
    return model


REQUEST_SPANS = {"enqueue", "queue_wait", "batch", "decode", "request"}


@pytest.mark.threaded
class TestServiceTelemetry:
    def serve_all(self, service, items):
        results = {}
        errors = []

        def client(index, item):
            try:
                results[index] = service.optimize(item)
            except BaseException as error:
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i, item), daemon=True)
            for i, item in enumerate(items)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        return [results[i] for i in range(len(items))]

    def test_enabled_run_produces_complete_traces_and_slo(self, db, model, labeled):
        tel = Telemetry()
        config = ServeConfig(max_batch_size=4, max_wait_ms=2.0)
        with OptimizerService(model, db.name, config, telemetry=tel) as service:
            self.serve_all(service, labeled)
            self.serve_all(service, labeled)  # second pass: cache hits
            report = service.report()
        complete = tel.tracer.complete_traces(REQUEST_SPANS)
        assert complete, "no complete queue->batch->decode trace recorded"
        spans = tel.tracer.trace(complete[0])
        names = [s.name for s in spans]
        assert "cache.fill" in names or "cache.hit" in names
        decode = next(s for s in spans if s.name == "decode")
        assert "replica" in decode.attrs
        # Metrics live in the shared registry under this service's label.
        latency = next(
            m for m in tel.registry.metrics() if m.name == "serve.latency_s"
        )
        assert latency.count == report.completed
        # SLO recorded every completed request under the tenant name.
        status = tel.slo.status(db.name)
        assert status is not None and status.total == report.completed
        # Cache-hit events landed on the second pass's traces.
        hit_events = [s for s in tel.tracer.spans() if s.name == "cache.hit"]
        assert hit_events

    def test_disabled_handle_serves_but_records_no_spans(self, db, model, labeled):
        tel = Telemetry.disabled()
        with OptimizerService(model, db.name, ServeConfig(max_batch_size=4), telemetry=tel) as service:
            self.serve_all(service, labeled)
            report = service.report()
        assert report.completed == len(labeled)
        assert tel.tracer.spans() == []
        assert tel.slo.statuses() == {}
        # The registry still carries the counters the report reads from.
        assert report.latency is not None

    def test_no_telemetry_baseline_still_reports(self, db, model, labeled):
        with OptimizerService(model, db.name, ServeConfig(max_batch_size=4)) as service:
            self.serve_all(service, labeled)
            report = service.report()
        assert report.completed == len(labeled)
        assert report.latency is not None and report.latency.count == len(labeled)

    def test_sequential_services_sharing_a_registry_do_not_collide(self, db, model, labeled):
        tel = Telemetry()
        with OptimizerService(model, db.name, ServeConfig(), telemetry=tel) as service:
            self.serve_all(service, labeled[:4])
            first = service.report().completed
        with OptimizerService(model, db.name, ServeConfig(), telemetry=tel) as service:
            self.serve_all(service, labeled[:4])
            second = service.report().completed
        assert first == 4 and second == 4  # not 8: distinct instance labels
