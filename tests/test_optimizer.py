"""Tests for selectivity estimation, DP enumeration and the optimal oracle."""

import numpy as np
import pytest

from repro.engine import execute_plan, left_deep_plan
from repro.optimizer import (
    HistogramEstimator,
    PostgresStylePlanner,
    TrueCardinalityOracle,
    dp_join_enumeration,
    greedy_join_order,
    optimal_join_order,
    optimal_plan,
    plan_with_order,
)
from repro.sql import Comparison, CompareOp, parse_query
from repro.storage import Database, JoinRelation, Table


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(7)
    n_fact, n_d1, n_d2, n_d3 = 2000, 100, 50, 25
    d1 = Table.from_dict("d1", {"id": np.arange(n_d1), "a": rng.integers(0, 10, n_d1)}, primary_key="id")
    d2 = Table.from_dict("d2", {"id": np.arange(n_d2), "b": rng.uniform(0, 1, n_d2)}, primary_key="id")
    d3 = Table.from_dict("d3", {"id": np.arange(n_d3), "c": rng.integers(0, 3, n_d3)}, primary_key="id")
    fact = Table.from_dict(
        "fact",
        {
            "id": np.arange(n_fact),
            "d1_id": rng.integers(0, n_d1, n_fact),
            "d2_id": rng.integers(0, n_d2, n_fact),
            "d3_id": rng.integers(0, n_d3, n_fact),
            "v": rng.normal(size=n_fact),
        },
        primary_key="id",
    )
    database = Database("star", [fact, d1, d2, d3])
    database.add_join(JoinRelation("fact", "d1_id", "d1", "id"))
    database.add_join(JoinRelation("fact", "d2_id", "d2", "id"))
    database.add_join(JoinRelation("fact", "d3_id", "d3", "id"))
    database.analyze()
    return database


QUERY_3WAY = (
    "SELECT COUNT(*) FROM fact, d1, d2 "
    "WHERE fact.d1_id = d1.id AND fact.d2_id = d2.id AND d1.a <= 3 AND fact.v > 0"
)
QUERY_4WAY = (
    "SELECT COUNT(*) FROM fact, d1, d2, d3 "
    "WHERE fact.d1_id = d1.id AND fact.d2_id = d2.id AND fact.d3_id = d3.id "
    "AND d1.a <= 3 AND d3.c = 1"
)


class TestHistogramEstimator:
    def test_base_rows(self, db):
        est = HistogramEstimator(db)
        assert est.base_rows("fact") == 2000

    def test_single_table_estimate_reasonable(self, db):
        est = HistogramEstimator(db)
        query = parse_query("SELECT COUNT(*) FROM fact WHERE fact.v > 0")
        estimate = est.estimate(query, frozenset(["fact"]))
        true = (db.table("fact").column("v").values > 0).sum()
        assert estimate == pytest.approx(true, rel=0.2)

    def test_equality_estimate_uses_mcv(self, db):
        est = HistogramEstimator(db)
        query = parse_query("SELECT COUNT(*) FROM d3 WHERE d3.c = 1")
        estimate = est.estimate(query, frozenset(["d3"]))
        true = (db.table("d3").column("c").values == 1).sum()
        assert estimate == pytest.approx(true, rel=0.35)

    def test_pk_fk_join_estimate(self, db):
        est = HistogramEstimator(db)
        query = parse_query("SELECT COUNT(*) FROM fact, d1 WHERE fact.d1_id = d1.id")
        estimate = est.estimate(query, frozenset(["fact", "d1"]))
        # PK-FK join keeps fact's cardinality: 2000.
        assert estimate == pytest.approx(2000, rel=0.2)

    def test_like_uses_default_selectivity(self, db):
        est = HistogramEstimator(db)
        strings = Table.from_dict("s", {"name": [f"name{i}" for i in range(100)]})
        sdb = Database("sdb", [strings])
        est2 = HistogramEstimator(sdb)
        query = parse_query("SELECT COUNT(*) FROM s WHERE s.name LIKE '%9%'")
        estimate = est2.estimate(query, frozenset(["s"]))
        assert 0 < estimate < 5  # default 0.005 * 100

    def test_selectivity_in_unit_interval(self, db):
        est = HistogramEstimator(db)
        for op in CompareOp:
            pred = Comparison("fact", "v", op, 0.2)
            sel = est.predicate_selectivity(pred)
            assert 0.0 <= sel <= 1.0


class TestTrueOracle:
    def test_matches_execution(self, db):
        oracle = TrueCardinalityOracle(db)
        query = parse_query(QUERY_3WAY)
        estimate = oracle.estimate(query, frozenset(query.tables))
        plan = left_deep_plan(query, ["fact", "d1", "d2"])
        result = execute_plan(plan, db)
        assert estimate == result.cardinality

    def test_single_table_subset(self, db):
        oracle = TrueCardinalityOracle(db)
        query = parse_query("SELECT COUNT(*) FROM d1 WHERE d1.a <= 3")
        true = (db.table("d1").column("a").values <= 3).sum()
        assert oracle.estimate(query, frozenset(["d1"])) == true

    def test_memoization_consistency(self, db):
        oracle = TrueCardinalityOracle(db)
        query = parse_query(QUERY_3WAY)
        a = oracle.estimate(query, frozenset(["fact", "d1"]))
        b = oracle.estimate(query, frozenset(["fact", "d1"]))
        assert a == b

    def test_disconnected_subset_raises(self, db):
        oracle = TrueCardinalityOracle(db)
        query = parse_query(QUERY_4WAY)
        with pytest.raises(ValueError):
            oracle.estimate(query, frozenset(["d1", "d2"]))


class TestDPEnumeration:
    def test_left_deep_plan_is_legal(self, db):
        query = parse_query(QUERY_4WAY)
        planned = dp_join_enumeration(query, HistogramEstimator(db))
        assert planned.plan.is_left_deep()
        # every prefix joins with the next table
        order = planned.join_order
        joined = {order[0]}
        for t in order[1:]:
            assert query.joins_between(joined, {t})
            joined.add(t)

    def test_bushy_at_least_as_good_as_left_deep(self, db):
        query = parse_query(QUERY_4WAY)
        est = HistogramEstimator(db)
        left_deep = dp_join_enumeration(query, est, left_deep_only=True)
        bushy = dp_join_enumeration(query, est, left_deep_only=False)
        assert bushy.cost <= left_deep.cost + 1e-9

    def test_single_table_query(self, db):
        query = parse_query("SELECT COUNT(*) FROM fact WHERE fact.v > 0")
        planned = dp_join_enumeration(query, HistogramEstimator(db))
        assert planned.plan.is_scan

    def test_disconnected_query_raises(self, db):
        query = parse_query("SELECT COUNT(*) FROM d1, d2")
        with pytest.raises(ValueError):
            dp_join_enumeration(query, HistogramEstimator(db))

    def test_too_many_tables_raises(self, db):
        query = parse_query(QUERY_4WAY)
        with pytest.raises(ValueError):
            dp_join_enumeration(query, HistogramEstimator(db), max_dp_tables=2)

    def test_dp_beats_or_ties_all_enumerable_orders(self, db):
        """The DP result must not be worse than any explicit legal order."""
        from itertools import permutations

        query = parse_query(QUERY_3WAY)
        oracle = TrueCardinalityOracle(db)
        planned = optimal_plan(query, db, oracle=oracle)

        best_explicit = float("inf")
        for perm in permutations(query.tables):
            try:
                plan = plan_with_order(query, list(perm), oracle)
            except ValueError:
                continue
            cards = {n.tables: float(oracle.estimate(query, n.tables)) for n in plan.nodes_postorder()}
            base = {t: oracle.base_rows(t) for t in query.tables}
            from repro.engine import DEFAULT_COST_MODEL

            cost = DEFAULT_COST_MODEL.plan_cost(plan, cards, base)
            best_explicit = min(best_explicit, cost)
        assert planned.cost <= best_explicit + 1e-6


class TestGreedy:
    def test_greedy_produces_legal_plan(self, db):
        query = parse_query(QUERY_4WAY)
        planned = greedy_join_order(query, HistogramEstimator(db))
        assert set(planned.join_order) == set(query.tables)
        assert planned.plan.is_left_deep()

    def test_greedy_not_much_worse_than_dp(self, db):
        query = parse_query(QUERY_4WAY)
        est = HistogramEstimator(db)
        dp_cost = dp_join_enumeration(query, est).cost
        greedy_cost = greedy_join_order(query, est).cost
        assert greedy_cost >= dp_cost - 1e-9


class TestPlannerFacades:
    def test_postgres_planner(self, db):
        planner = PostgresStylePlanner(db)
        query = parse_query(QUERY_4WAY)
        planned = planner.plan(query)
        result = execute_plan(planned.plan, db)
        assert result.cardinality >= 0

    def test_planner_estimates(self, db):
        planner = PostgresStylePlanner(db)
        query = parse_query(QUERY_3WAY)
        assert planner.estimate_cardinality(query) > 0
        assert planner.estimate_cost(query) > 0

    def test_plan_with_order_fixed_order(self, db):
        query = parse_query(QUERY_3WAY)
        plan = plan_with_order(query, ["d1", "fact", "d2"], HistogramEstimator(db))
        assert plan.leaf_tables_in_order() == ["d1", "fact", "d2"]
        for node in plan.nodes_preorder():
            if node.is_join:
                assert node.join_op is not None

    def test_optimal_order_executes_fastest_among_permutations(self, db):
        """The optimal-order plan's simulated time is minimal across orders."""
        from itertools import permutations

        query = parse_query(QUERY_3WAY)
        oracle = TrueCardinalityOracle(db)
        best_order = optimal_join_order(query, db, oracle=oracle)
        times = {}
        for perm in permutations(query.tables):
            try:
                plan = plan_with_order(query, list(perm), oracle)
            except ValueError:
                continue
            times[perm] = execute_plan(plan, db).simulated_ms
        assert times[tuple(best_order)] <= min(times.values()) * 1.35
