"""Property-style tests for the structural signatures in core/serializer.

The serving layer's plan cache keys on ``plan_signature`` and
``query_signature``, so their contracts are load-bearing:

- **soundness of sharing** — structurally equal plans/queries *always*
  share a signature (deep copies, independently rebuilt trees,
  re-labeled queries);
- **sensitivity** — any structural mutation (swapped children, changed
  operator, changed predicate, renamed table, dropped join) *never*
  preserves the signature, or a cache hit would silently serve a wrong
  plan.

Randomized over generated workloads rather than hand-picked examples.
"""

import copy

import numpy as np
import pytest

from repro.core import plan_signature, query_signature
from repro.datagen import generate_database
from repro.engine.plan import JoinOp, PlanNode, ScanOp
from repro.sql import Query
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=9, num_tables=6, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=5, seed=4))
    items = QueryLabeler(db).label_many(generator.generate(30), with_optimal_order=False)
    assert len(items) >= 10
    return items


def join_nodes(plan: PlanNode) -> list[PlanNode]:
    return [node for node in plan.nodes_preorder() if node.is_join]


def scan_nodes(plan: PlanNode) -> list[PlanNode]:
    return [node for node in plan.nodes_preorder() if node.is_scan]


class TestPlanSignatureSharing:
    def test_deep_copies_share_signature(self, labeled):
        for item in labeled:
            twin = copy.deepcopy(item.plan)
            assert twin is not item.plan
            assert plan_signature(twin) == plan_signature(item.plan)

    def test_regenerated_workload_shares_signatures(self, db):
        """Rebuilding the same workload from scratch reproduces every key."""
        def build():
            generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=8))
            return QueryLabeler(db).label_many(generator.generate(12), with_optimal_order=False)

        first, second = build(), build()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.plan is not b.plan
            assert plan_signature(a.plan) == plan_signature(b.plan)

    def test_signature_is_hashable_and_stable(self, labeled):
        for item in labeled:
            signature = plan_signature(item.plan)
            assert hash(signature) == hash(plan_signature(item.plan))


class TestPlanSignatureSensitivity:
    def test_distinct_plans_have_distinct_signatures(self, labeled):
        signatures = [plan_signature(item.plan) for item in labeled]
        assert len(set(signatures)) == len(signatures)

    def test_swapped_children_change_signature(self, labeled):
        """Every join node: mirroring its children must change the key."""
        checked = 0
        for item in labeled:
            for index, _ in enumerate(join_nodes(item.plan)):
                mutated = copy.deepcopy(item.plan)
                node = join_nodes(mutated)[index]
                node.left, node.right = node.right, node.left
                assert plan_signature(mutated) != plan_signature(item.plan)
                checked += 1
        assert checked >= len(labeled)  # at least one join per query

    def test_changed_join_operator_changes_signature(self, labeled):
        rng = np.random.default_rng(0)
        for item in labeled:
            mutated = copy.deepcopy(item.plan)
            joins = join_nodes(mutated)
            node = joins[rng.integers(0, len(joins))]
            node.join_op = next(op for op in JoinOp if op is not node.join_op)
            assert plan_signature(mutated) != plan_signature(item.plan)

    def test_changed_scan_operator_changes_signature(self, labeled):
        rng = np.random.default_rng(1)
        for item in labeled:
            mutated = copy.deepcopy(item.plan)
            scans = scan_nodes(mutated)
            node = scans[rng.integers(0, len(scans))]
            node.scan_op = ScanOp.INDEX if node.scan_op is not ScanOp.INDEX else ScanOp.SEQ
            assert plan_signature(mutated) != plan_signature(item.plan)

    def test_renamed_table_changes_signature(self, labeled):
        for item in labeled:
            mutated = copy.deepcopy(item.plan)
            scan_nodes(mutated)[0].table = "no_such_table"
            assert plan_signature(mutated) != plan_signature(item.plan)

    def test_dropped_filter_changes_signature(self, labeled):
        changed = 0
        for item in labeled:
            mutated = copy.deepcopy(item.plan)
            for node in scan_nodes(mutated):
                if node.filter is not None and len(node.filter):
                    node.filter = None
                    assert plan_signature(mutated) != plan_signature(item.plan)
                    changed += 1
                    break
        assert changed > 0  # the workload generator does emit filters

    def test_dropped_join_predicate_changes_signature(self, labeled):
        changed = 0
        for item in labeled:
            mutated = copy.deepcopy(item.plan)
            for node in join_nodes(mutated):
                if node.join_predicates:
                    node.join_predicates = node.join_predicates[:-1]
                    assert plan_signature(mutated) != plan_signature(item.plan)
                    changed += 1
                    break
        assert changed > 0


class TestQuerySignature:
    def test_copies_share_signature(self, labeled):
        for item in labeled:
            assert query_signature(copy.deepcopy(item.query)) == query_signature(item.query)

    def test_join_and_filter_order_insensitive(self, labeled):
        """joins/filters are sets; permuting them must not change the key."""
        for item in labeled:
            query = item.query
            permuted = Query(
                tables=list(query.tables),
                joins=list(reversed(query.joins)),
                filters=dict(reversed(list(query.filters.items()))),
            )
            assert query_signature(permuted) == query_signature(query)

    def test_table_order_sensitive(self, labeled):
        """The canonical table order is the decoder's position mapping."""
        item = next(i for i in labeled if i.query.num_tables >= 3)
        query = item.query
        rotated = Query(
            tables=query.tables[1:] + query.tables[:1],
            joins=list(query.joins),
            filters=dict(query.filters),
        )
        assert query_signature(rotated) != query_signature(query)

    def test_dropped_join_changes_signature(self, labeled):
        item = next(i for i in labeled if len(i.query.joins) >= 2)
        query = item.query
        reduced = Query(
            tables=list(query.tables),
            joins=query.joins[:-1],
            filters=dict(query.filters),
        )
        assert query_signature(reduced) != query_signature(query)

    def test_distinct_queries_distinct_signatures(self, labeled):
        signatures = {query_signature(item.query) for item in labeled}
        assert len(signatures) == len(labeled)

    def test_empty_filter_equivalent_to_absent(self, db, labeled):
        """An empty conjunction entry must not change the signature."""
        item = labeled[0]
        query = item.query
        table = query.tables[0]
        if table in query.filters and len(query.filters[table]):
            pytest.skip("first table carries a real filter")
        from repro.sql.predicates import Conjunction

        padded = Query(
            tables=list(query.tables),
            joins=list(query.joins),
            filters={**query.filters, table: Conjunction(table=table, predicates=())},
        )
        assert query_signature(padded) == query_signature(query)
