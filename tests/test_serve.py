"""Serve-vs-direct parity and unit behavior of the optimizer service.

The ISSUE's contract: for randomized workloads, join orders returned
through the micro-batching service are identical to direct
``predict_join_orders`` calls at every beam width 1-8 — whether a
request was batched, coalesced with an identical request, or answered
from the plan cache.  Plus request-lifecycle behavior: backpressure,
per-request error isolation, timeouts, and lifecycle errors.
"""

import threading

import pytest

from repro.core import JointTrainer, ModelConfig, MTMLFQO, replicate_model
from repro.core.encoders import DatabaseFeaturizer
from repro.datagen import generate_database
from repro.serve import (
    CacheStats,
    OptimizerService,
    PlanCache,
    ServeConfig,
    ServiceOverloadedError,
    ServiceStoppedError,
    ServiceTimeoutError,
)
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)

pytestmark = pytest.mark.threaded


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=6, num_tables=5, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, SMALL)
    feat.train_encoders(queries_per_table=4, epochs=2)
    return feat


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=7))
    items = QueryLabeler(db).label_many(generator.generate(24), with_optimal_order=False)
    assert len(items) >= 8
    return items[:8]


@pytest.fixture()
def model(db, featurizer):
    model = MTMLFQO(SMALL)
    model.attach_featurizer(db.name, featurizer)
    return model


def serve_all(service, items):
    """Submit every item concurrently; return orders in item order."""
    results: dict[int, list[str]] = {}
    errors: list[BaseException] = []

    def client(index, item):
        try:
            results[index] = service.optimize(item)
        except BaseException as error:  # surfaced to the test
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i, item)) for i, item in enumerate(items)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return [results[i] for i in range(len(items))]


class TestServeParity:
    @pytest.mark.parametrize("beam_width", list(range(1, 9)))
    def test_parity_across_beam_widths(self, db, model, labeled, beam_width):
        direct = model.predict_join_orders(db.name, labeled, beam_width=beam_width)
        config = ServeConfig(max_batch_size=4, max_wait_ms=2.0, beam_width=beam_width)
        with OptimizerService(model, db.name, config) as service:
            served = serve_all(service, labeled)
        assert served == direct

    def test_cached_responses_stay_identical(self, db, model, labeled):
        direct = model.predict_join_orders(db.name, labeled)
        with OptimizerService(model, db.name, ServeConfig(max_batch_size=4)) as service:
            first = serve_all(service, labeled)
            second = [service.optimize(item) for item in labeled]
            report = service.report()
        assert first == direct
        assert second == direct
        assert report.cache_hits >= len(labeled)  # the whole second pass hit

    def test_coalesced_duplicates_get_one_model_call(self, db, model, labeled):
        item = labeled[0]
        direct = model.predict_join_orders(db.name, [item])[0]
        # Cache off: identical concurrent requests may only coalesce.
        config = ServeConfig(max_batch_size=8, max_wait_ms=50.0, plan_cache_size=0)
        with OptimizerService(model, db.name, config) as service:
            served = serve_all(service, [item] * 6)
            report = service.report()
        assert served == [direct] * 6
        assert report.completed == 6
        assert report.model_calls < 6  # at least one batch coalesced duplicates
        assert report.coalesced >= 1

    def test_model_update_invalidates_cached_plans(self, db, model, labeled, featurizer):
        """A version bump retires cached orders: no stale-weights hits."""
        with OptimizerService(model, db.name) as service:
            first = service.optimize(labeled[0])
            hits_before = service.report().cache_hits
            service.optimize(labeled[0])
            assert service.report().cache_hits == hits_before + 1
            model.attach_featurizer(db.name, featurizer)  # bumps model.version
            again = service.optimize(labeled[0])
            assert service.report().cache_hits == hits_before + 1  # forced a miss
        assert again == first  # same weights reattached -> same order

    def test_trainer_marks_model_updated(self):
        model = MTMLFQO(SMALL)
        trainer = JointTrainer(model)
        trainer._step = lambda db_name, batch: 0.0
        version = model.version
        trainer.train([("a", object())], epochs=1, batch_size=1, seed=0)
        assert model.version == version + 1

    def test_mark_updated_clears_feature_caches(self, db, model, labeled):
        """Stale encodings must go with the version: a featurizer
        retrained in place would otherwise keep serving old features."""
        model.encode_query(db.name, labeled[0])
        assert len(model._cache) == 1 and len(model._node_cache) > 0
        model.mark_updated()
        assert len(model._cache) == 0 and len(model._node_cache) == 0

    def test_single_caller_needs_no_concurrency(self, db, model, labeled):
        """max_wait only delays; a lone blocking caller still gets served."""
        direct = model.predict_join_orders(db.name, labeled[:3])
        config = ServeConfig(max_batch_size=16, max_wait_ms=5.0, plan_cache_size=0)
        with OptimizerService(model, db.name, config) as service:
            served = [service.optimize(item) for item in labeled[:3]]
        assert served == direct


class TestHotSwap:
    @pytest.fixture()
    def model_b(self, db, featurizer, labeled):
        """A second model with visibly different weights (briefly trained)."""
        other = MTMLFQO(SMALL)
        other.attach_featurizer(db.name, featurizer)
        JointTrainer(other).train(
            [(db.name, item) for item in labeled], epochs=2, batch_size=4
        )
        return other

    def test_swap_serves_new_model_and_invalidates_cache(self, db, model, model_b, labeled):
        direct_a = model.predict_join_orders(db.name, labeled)
        direct_b = model_b.predict_join_orders(db.name, labeled)
        assert direct_a != direct_b  # the swap must be observable
        with OptimizerService(model, db.name) as service:
            pre = [service.optimize(item) for item in labeled]
            assert pre == direct_a
            returned = service.swap_model(model_b)
            assert returned is model_b
            post = [service.optimize(item) for item in labeled]
        assert post == direct_b
        assert service.report().swaps == 1

    def test_equal_version_counters_cannot_serve_stale_cache(self, db, model, model_b, labeled):
        """The acceptance criterion's nastiest corner: `version` counters
        are per-instance, so two models can share one.  The service's
        swap epoch must still retire every pre-swap cache entry."""
        model_b.restore_version(model.version)
        assert model_b.version == model.version
        direct_b = model_b.predict_join_orders(db.name, labeled)
        with OptimizerService(model, db.name) as service:
            pre = [service.optimize(item) for item in labeled]  # fills the cache
            hits_before = service.report().cache_hits
            service.swap_model(model_b)
            assert len(service.cache) == 0  # dead pre-swap entries dropped
            post = [service.optimize(item) for item in labeled]
            assert service.report().cache_hits == hits_before  # all forced misses
        assert post == direct_b
        assert pre != post

    def test_swap_from_checkpoint_path(self, db, model, model_b, labeled, tmp_path):
        from repro.core import save_checkpoint

        path = save_checkpoint(model_b, str(tmp_path / "replacement"))
        direct_b = model_b.predict_join_orders(db.name, labeled)
        with OptimizerService(model, db.name) as service:
            service.optimize(labeled[0])
            loaded = service.swap_model(path)  # databases default to the served DB
            assert loaded is not model_b  # a fresh instance from disk
            post = [service.optimize(item) for item in labeled]
        assert post == direct_b

    def test_bad_replacement_leaves_old_model_serving(self, db, model, labeled):
        direct_a = model.predict_join_orders(db.name, labeled)
        with OptimizerService(model, db.name) as service:
            with pytest.raises(KeyError, match="no featurizer"):
                service.swap_model(MTMLFQO(SMALL))  # no (F) for this database
            assert service.report().swaps == 0
            assert [service.optimize(item) for item in labeled] == direct_a

    def test_swap_during_concurrent_traffic_loses_nothing(self, db, model, model_b, labeled):
        """Clients hammering optimize() across a swap all get exactly one
        answer, each bit-identical to one of the two models' direct
        results; traffic after the swap is all new-model."""
        direct_a = model.predict_join_orders(db.name, labeled)
        direct_b = model_b.predict_join_orders(db.name, labeled)
        config = ServeConfig(max_batch_size=4, max_wait_ms=2.0)
        rounds = 6
        responses: dict[tuple[int, int], list[str]] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        with OptimizerService(model, db.name, config) as service:
            def client(slot):
                try:
                    for round_index in range(rounds):
                        item = labeled[(slot + round_index) % len(labeled)]
                        order = service.optimize(item)
                        with lock:
                            responses[(slot, round_index)] = (
                                (slot + round_index) % len(labeled), order)
                except BaseException as error:
                    errors.append(error)

            threads = [threading.Thread(target=client, args=(slot,)) for slot in range(16)]
            for thread in threads:
                thread.start()
            service.swap_model(model_b)  # lands mid-traffic
            for thread in threads:
                thread.join()
            post = [service.optimize(item) for item in labeled]

        assert not errors, errors
        assert len(responses) == 16 * rounds  # exactly one answer each
        for index, order in responses.values():
            assert order in (direct_a[index], direct_b[index])
        assert post == direct_b  # after the swap: new model only


class TestRequestLifecycle:
    def test_not_started_raises(self, db, model, labeled):
        service = OptimizerService(model, db.name)
        with pytest.raises(ServiceStoppedError):
            service.optimize(labeled[0])

    def test_stopped_raises_and_stop_is_idempotent(self, db, model, labeled):
        service = OptimizerService(model, db.name).start()
        assert service.optimize(labeled[0]) == model.predict_join_orders(db.name, [labeled[0]])[0]
        service.stop()
        service.stop()
        with pytest.raises(ServiceStoppedError):
            service.optimize(labeled[0])

    def test_missing_featurizer_fails_at_construction(self, labeled):
        bare = MTMLFQO(SMALL)
        with pytest.raises(KeyError, match="no featurizer"):
            OptimizerService(bare, "nowhere")

    def test_backpressure_rejects_when_queue_full(self, db, model, labeled):
        service = OptimizerService(
            model, db.name, ServeConfig(max_queue_depth=1, plan_cache_size=0)
        )
        # No drain thread: requests queue up and time out instead of
        # being served, making the rejection deterministic.
        service._running = True
        filler_errors = []

        def filler():
            try:
                service.optimize(labeled[0], timeout=1.0)
            except ServiceTimeoutError as error:
                filler_errors.append(error)

        thread = threading.Thread(target=filler)
        thread.start()
        for _ in range(200):
            if service.queue_depth == 1:
                break
            threading.Event().wait(0.005)
        assert service.queue_depth == 1
        with pytest.raises(ServiceOverloadedError):
            service.optimize(labeled[1], timeout=1.0)
        thread.join()
        assert len(filler_errors) == 1
        assert service.report().rejected == 1
        service._running = False

    def test_disconnected_query_fails_alone(self, db, model, labeled):
        """One bad request errors with the model's message; batchmates survive."""
        from repro.engine.plan import scan_node
        from repro.sql import Query
        from repro.workload.labeler import LabeledQuery

        bad_query = Query(tables=["alpha", "beta"], joins=[], filters={})
        bad = LabeledQuery(
            query=bad_query,
            plan=scan_node("alpha"),
            node_cardinalities=[1],
            node_costs=[1.0],
            total_time_ms=0.0,
        )
        direct = model.predict_join_orders(db.name, labeled)
        config = ServeConfig(max_batch_size=16, max_wait_ms=50.0, plan_cache_size=0)
        with OptimizerService(model, db.name, config) as service:
            results: dict[int, list[str]] = {}
            caught: list[BaseException] = []

            def good_client(index, item):
                results[index] = service.optimize(item)

            def bad_client():
                try:
                    service.optimize(bad)
                except ValueError as error:
                    caught.append(error)

            threads = [threading.Thread(target=good_client, args=(i, item))
                       for i, item in enumerate(labeled)]
            threads.append(threading.Thread(target=bad_client))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report = service.report()
        assert [results[i] for i in range(len(labeled))] == direct
        assert len(caught) == 1
        assert "disconnected" in str(caught[0])
        assert "alpha" in str(caught[0]) and "beta" in str(caught[0])
        assert report.failed == 1
        assert report.completed == len(labeled)
        assert report.coalesced == 0  # a failed request is not "coalesced"

    def test_drain_thread_survives_unexpected_errors(self, db, model, labeled, monkeypatch):
        """A rogue exception fails its batch but never kills the drainer."""
        import repro.serve.service as service_module

        def explode(adjacency, tables):
            raise KeyError("malformed request")

        with OptimizerService(model, db.name, ServeConfig(plan_cache_size=0)) as service:
            monkeypatch.setattr(service_module, "require_connected", explode)
            with pytest.raises(KeyError):
                service.optimize(labeled[0])
            monkeypatch.undo()
            # The service must still be alive and serving.
            order = service.optimize(labeled[1])
        assert order == model.predict_join_orders(db.name, [labeled[1]])[0]

    def test_timeout_race_returns_fulfilled_result(self, db, model, labeled, monkeypatch):
        """The drain thread fulfilling a request *between* ``done.wait``
        timing out and the waiter marking itself abandoned must not lose
        the computed order: optimize() rechecks ``done`` under the mark
        and returns the result, counting a near-miss.

        The race window is a few instructions wide, so the drain is
        instrumented: the request's ``done.wait`` times out for real (no
        drain thread runs), then a simulated drain fulfills the request
        before wait's False return reaches optimize()."""
        import types

        import repro.serve.service as service_module

        expected = model.predict_join_orders(db.name, [labeled[0]])[0]

        class RacyRequest(service_module._Request):
            def __init__(self, labeled_arg, key, **kwargs):
                super().__init__(labeled_arg, key, **kwargs)
                real_event = self.done
                racy = self

                def wait(timeout=None):
                    real_event.wait(timeout)  # genuinely times out
                    racy.fulfill(expected)    # the drain lands in the window
                    return False              # ...but wait already gave up

                self.done = types.SimpleNamespace(
                    wait=wait, is_set=real_event.is_set, set=real_event.set
                )

        service = OptimizerService(model, db.name, ServeConfig(plan_cache_size=0))
        service._running = True  # queue accepts; no real drain thread
        monkeypatch.setattr(service_module, "_Request", RacyRequest)
        try:
            order = service.optimize(labeled[0], timeout=0.01)
        finally:
            service._running = False
        assert order == expected  # the near-missed response is returned...
        report = service.report()
        assert report.timeout_near_misses == 1  # ...and counted
        assert report.completed == 1
        assert report.failed == 0

    def test_abandoned_requests_are_not_decoded(self, db, model, labeled):
        """Timed-out waiters' requests are skipped by the drain loop."""
        service = OptimizerService(model, db.name, ServeConfig(plan_cache_size=0))
        service._running = True  # queue accepts, but no drain thread yet
        with pytest.raises(ServiceTimeoutError):
            service.optimize(labeled[0], timeout=0.01)
        assert service.queue_depth == 1
        abandoned = service._queue[0]
        assert abandoned.abandoned
        service._process_batch([abandoned])
        report = service.report()
        assert report.model_calls == 0 and report.batches == 0
        assert not abandoned.done.is_set()
        service._running = False

    def test_report_counters_consistent(self, db, model, labeled):
        with OptimizerService(model, db.name, ServeConfig(max_batch_size=4)) as service:
            serve_all(service, labeled)
            report = service.report()
        assert report.completed == len(labeled)
        assert report.rejected == 0 and report.failed == 0
        assert report.batches >= 1
        assert report.batched_requests == report.batches * report.mean_batch_size
        assert report.model_calls <= len(labeled)
        assert report.queue_depth == 0
        assert report.latency is not None and report.latency.count == len(labeled)
        assert report.throughput_qps > 0

    def test_format_serving_report_renders(self, db, model, labeled):
        from repro.eval import format_serving_report

        with OptimizerService(model, db.name) as service:
            service.optimize(labeled[0])
            text = format_serving_report(service.report())
        assert "completed" in text and "plan cache" in text and "latency" in text


class TestReplicaPool:
    @pytest.fixture()
    def model_b(self, db, featurizer, labeled):
        """A second model with visibly different weights (briefly trained)."""
        other = MTMLFQO(SMALL)
        other.attach_featurizer(db.name, featurizer)
        JointTrainer(other).train(
            [(db.name, item) for item in labeled], epochs=2, batch_size=4
        )
        return other

    @pytest.mark.parametrize("beam_width", list(range(1, 9)))
    def test_pool_parity_across_beam_widths(self, db, model, labeled, beam_width):
        """N replicas, cache off (every request decodes on some replica):
        orders are bit-identical to direct calls — and therefore to the
        1-replica service, whose parity the suite asserts above."""
        direct = model.predict_join_orders(db.name, labeled, beam_width=beam_width)
        config = ServeConfig(
            num_replicas=3,
            max_batch_size=4,
            max_wait_ms=2.0,
            beam_width=beam_width,
            plan_cache_size=0,
        )
        with OptimizerService(model, db.name, config) as service:
            served = serve_all(service, labeled)
        assert served == direct

    def test_primary_replica_is_the_given_model(self, db, model):
        service = OptimizerService(model, db.name, ServeConfig(num_replicas=3))
        assert service.session.model is model  # live-model identity holds
        assert service._replicas[0].model is model
        assert service._replicas[0].session is service.session
        clones = service._replicas[1:]
        assert len(clones) == 2
        assert all(replica.model is not model for replica in clones)
        assert all(replica.model.version == model.version for replica in clones)

    def test_clone_for_inference_is_bit_identical_and_independent(self, db, model, labeled):
        clone = model.clone_for_inference()
        assert clone is not model
        assert clone.version == model.version
        direct = model.predict_join_orders(db.name, labeled)
        assert clone.predict_join_orders(db.name, labeled) == direct
        # Weight arrays are copies, never views of the source's.
        for (name, param), (clone_name, clone_param) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name == clone_name
            assert param.data is not clone_param.data
        # Mutating the source does not reach into the clone.
        version = clone.version
        model.mark_updated()
        assert clone.version == version
        assert clone.predict_join_orders(db.name, labeled) == direct

    def test_replicate_model_fans_out(self, model):
        assert replicate_model(model, 0) == []
        replicas = replicate_model(model, 2)
        assert len(replicas) == 2
        assert len({id(replica) for replica in replicas}) == 2
        with pytest.raises(ValueError):
            replicate_model(model, -1)

    def test_swap_under_load_with_all_replicas_busy(self, db, model, model_b, labeled):
        """Clients saturating a 4-replica pool across a swap each get
        exactly one answer, bit-identical to one of the two models'
        direct results; traffic after the swap is all new-model."""
        direct_a = model.predict_join_orders(db.name, labeled)
        direct_b = model_b.predict_join_orders(db.name, labeled)
        config = ServeConfig(
            num_replicas=4, max_batch_size=2, max_wait_ms=1.0, plan_cache_size=0
        )
        rounds = 6
        responses: dict[tuple[int, int], tuple[int, list[str]]] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        with OptimizerService(model, db.name, config) as service:
            def client(slot):
                try:
                    for round_index in range(rounds):
                        index = (slot + round_index) % len(labeled)
                        order = service.optimize(labeled[index])
                        with lock:
                            responses[(slot, round_index)] = (index, order)
                except BaseException as error:
                    errors.append(error)

            threads = [threading.Thread(target=client, args=(slot,)) for slot in range(16)]
            for thread in threads:
                thread.start()
            service.swap_model(model_b)  # lands with every replica under fire
            for thread in threads:
                thread.join()
            post = [service.optimize(item) for item in labeled]
            report = service.report()

        assert not errors, errors
        assert len(responses) == 16 * rounds  # exactly one answer each
        for index, order in responses.values():
            assert order in (direct_a[index], direct_b[index])
        assert post == direct_b  # after the swap: new replica set only
        assert report.swaps == 1

    def test_report_carries_per_replica_counters(self, db, model, labeled):
        config = ServeConfig(
            num_replicas=2, max_batch_size=2, max_wait_ms=1.0, plan_cache_size=0
        )
        with OptimizerService(model, db.name, config) as service:
            serve_all(service, labeled)
            report = service.report()
        assert report.num_replicas == 2
        assert len(report.replica_batches) == 2
        assert len(report.replica_requests) == 2
        assert len(report.replica_utilization) == 2
        # Every drained batch is attributed to exactly one replica slot.
        assert sum(report.replica_batches) == report.batches
        assert sum(report.replica_requests) == report.batched_requests
        assert all(share >= 0.0 for share in report.replica_utilization)

    def test_pool_report_renders(self, db, model, labeled):
        from repro.eval import format_serving_report

        with OptimizerService(model, db.name, ServeConfig(num_replicas=2)) as service:
            serve_all(service, labeled)
            text = format_serving_report(service.report())
        assert "replica pool" in text and "replica utilization" in text


class TestPlanCacheStats:
    def test_stats_is_one_atomic_reading(self):
        cache = PlanCache(4)
        assert cache.stats() == CacheStats(hits=0, misses=0, size=0)
        cache.get(("a",))  # miss
        cache.put(("a",), ["t1"])
        cache.get(("a",))  # hit
        snap = cache.stats()
        assert (snap.hits, snap.misses, snap.size) == (1, 1, 1)
        assert snap.lookups == 2
        assert snap.hit_rate == 0.5

    def test_clear_returns_retired_epoch(self):
        cache = PlanCache(4)
        cache.get(("k",))  # miss
        cache.put(("k",), ["t"])
        cache.get(("k",))  # hit
        retired = cache.clear()  # default: entries dropped, counters kept
        assert retired == CacheStats(hits=1, misses=1, size=1)
        assert len(cache) == 0
        assert cache.stats() == CacheStats(hits=1, misses=1, size=0)
        retired = cache.clear(reset_stats=True)
        assert retired == CacheStats(hits=1, misses=1, size=0)
        assert cache.stats() == CacheStats(hits=0, misses=0, size=0)

    def test_swap_starts_a_fresh_cache_epoch(self, db, model, labeled):
        """Post-swap hit rate covers the new epoch only; the retired
        epoch's totals survive in the retired_* report fields."""
        other = model.clone_for_inference()
        with OptimizerService(model, db.name) as service:
            service.optimize(labeled[0])  # miss
            service.optimize(labeled[0])  # hit
            before = service.report()
            assert before.cache_hits == 1 and before.cache_misses == 1
            service.swap_model(other)
            after = service.report()
        assert after.cache_hits == 0 and after.cache_misses == 0
        assert after.cache_hit_rate == 0.0
        assert after.retired_cache_hits == 1
        assert after.retired_cache_misses == 1
