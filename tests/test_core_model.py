"""Integration tests for featurization, the MTMLF-QO model and training."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    DatabaseFeaturizer,
    JointTrainer,
    MetaLearner,
    MLAConfig,
    ModelConfig,
    MTMLFQO,
    PredicateFeaturizer,
    joint_loss,
    node_qerror_loss,
    order_positions,
    sequence_level_loss,
    sequence_log_prob,
)
from repro.core.beam import BeamCandidate
from repro.datagen import generate_database, generate_databases
from repro.sql import Comparison, CompareOp, Conjunction, LikePredicate, parse_query
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator


SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=2, decoder_layers=1)


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=1, num_tables=6, row_range=(80, 300), attr_range=(2, 3))


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=0))
    return QueryLabeler(db).label_many(generator.generate(40), with_optimal_order=True)


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, SMALL)
    feat.train_encoders(queries_per_table=6, epochs=3)
    return feat


@pytest.fixture(scope="module")
def trained(db, labeled, featurizer):
    model = MTMLFQO(SMALL)
    model.attach_featurizer(db.name, featurizer)
    trainer = JointTrainer(model)
    result = trainer.train([(db.name, item) for item in labeled], epochs=8, batch_size=8, seed=0)
    return model, trainer, result


class TestPredicateFeaturizer:
    def test_vector_width(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        table = db.table_names[0]
        column = db.table(table).numeric_columns()[0]
        vec = pf.featurize_predicate(Comparison(table, column, CompareOp.LE, 5))
        assert vec.shape == (SMALL.predicate_feature_dim,)

    def test_op_onehot_set(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        table = db.table_names[0]
        column = db.table(table).numeric_columns()[0]
        vec = pf.featurize_predicate(Comparison(table, column, CompareOp.GT, 5))
        assert vec[:10].sum() == 1.0

    def test_like_features(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        # find a string column anywhere in the DB
        for table in db.table_names:
            strings = db.table(table).string_columns()
            if strings:
                vec = pf.featurize_predicate(LikePredicate(table, strings[0], "%ab%"))
                assert vec[8] == 1.0  # LIKE slot
                return
        pytest.skip("database has no string columns")

    def test_quantiles_monotone(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        table = db.table_names[0]
        column = db.table(table).numeric_columns()[0]
        values = db.table(table).column(column).numeric_values()
        low = pf.featurize_predicate(Comparison(table, column, CompareOp.LE, float(np.quantile(values, 0.2))))
        high = pf.featurize_predicate(Comparison(table, column, CompareOp.LE, float(np.quantile(values, 0.9))))
        assert low[11] <= high[11]  # high-quantile slot

    def test_conjunction_tokens(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        table = db.table_names[0]
        column = db.table(table).numeric_columns()[0]
        conj = Conjunction(
            table=table,
            predicates=(
                Comparison(table, column, CompareOp.GE, 1),
                Comparison(table, column, CompareOp.LE, 9),
            ),
        )
        tokens, column_ids = pf.featurize_conjunction(conj)
        assert tokens.shape == (3, SMALL.predicate_feature_dim)  # summary + 2
        assert column_ids[0] == 0
        assert (column_ids[1:] > 0).all()

    def test_column_vocabulary_complete(self, db):
        pf = PredicateFeaturizer(db, SMALL)
        total = sum(db.table(t).num_columns for t in db.table_names)
        assert pf.num_columns == total


class TestDatabaseFeaturizer:
    def test_encode_filter_shape(self, db, featurizer):
        table = db.table_names[0]
        conj = Conjunction(table=table, predicates=())
        out = featurizer.encode_filter(conj)
        assert out.shape == (1, SMALL.d_model)

    def test_selectivity_prediction_nonpositive(self, db, featurizer):
        table = db.table_names[0]
        conj = Conjunction(table=table, predicates=())
        log_sel = featurizer.predict_filter_selectivity(conj)
        assert log_sel.data[0] <= 0.0

    def test_encoder_training_reduces_error(self, db):
        feat = DatabaseFeaturizer(db, SMALL, seed=7)
        table = db.table_names[0]
        from repro.workload import generate_single_table_queries

        queries = generate_single_table_queries(db, table, 12, seed=1)
        base_table = db.table(table)

        def mean_error():
            total = 0.0
            for query in queries:
                conj = query.filter_for(table)
                true = max(conj.evaluate(base_table).mean(), 1e-4)
                with nn.no_grad():
                    pred = feat.predict_filter_selectivity(conj).data[0]
                total += abs(pred - np.log(true))
            return total / len(queries)

        before = mean_error()
        feat.train_encoders(queries_per_table=12, epochs=8, seed=1)
        after = mean_error()
        assert after < before

    def test_parameters_include_all_encoders(self, db, featurizer):
        names = [n for n, _ in featurizer.named_parameters()]
        for table in db.table_names:
            assert any(f"encoders.{table}." in n for n in names)


class TestModelForward:
    def test_encode_query_shapes(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        encoding = model.encode_query(db.name, labeled[0])
        assert encoding.features.shape == (labeled[0].num_nodes, SMALL.node_feature_dim)
        assert encoding.tree_encodings.shape == (labeled[0].num_nodes, SMALL.d_model)
        assert set(encoding.leaf_positions) == set(labeled[0].query.tables)

    def test_encode_query_cached(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        a = model.encode_query(db.name, labeled[0])
        b = model.encode_query(db.name, labeled[0])
        assert a is b
        model.clear_cache()
        c = model.encode_query(db.name, labeled[0])
        assert c is not a

    def test_forward_batch_shapes(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        batch = labeled[:3]
        shared, pad_mask, encodings = model.forward_batch(db.name, batch)
        max_len = max(item.num_nodes for item in batch)
        assert shared.shape == (3, max_len, SMALL.d_model)
        assert pad_mask.shape == (3, max_len)
        for i, item in enumerate(batch):
            assert (~pad_mask[i]).sum() == item.num_nodes

    def test_missing_featurizer_raises(self, labeled):
        model = MTMLFQO(SMALL)
        with pytest.raises(KeyError):
            model.forward_batch("ghost", [labeled[0]])

    def test_prediction_shapes(self, db, labeled, trained):
        model, _, _ = trained
        cards = model.predict_cardinalities(db.name, labeled[:2])
        costs = model.predict_costs(db.name, labeled[:2])
        for item, card, cost in zip(labeled[:2], cards, costs):
            assert card.shape == (item.num_nodes,)
            assert cost.shape == (item.num_nodes,)
            assert (card > 0).all() and (cost > 0).all()

    def test_predict_join_order_legal(self, db, labeled, trained):
        model, _, _ = trained
        for item in labeled[:5]:
            order = model.predict_join_order(db.name, item)
            assert sorted(order) == sorted(item.query.tables)
            joined = {order[0]}
            for table in order[1:]:
                assert item.query.joins_between(joined, {table})
                joined.add(table)


class TestTraining:
    def test_loss_decreases(self, trained):
        _, _, result = trained
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_training_beats_untrained_on_cards(self, db, labeled, featurizer, trained):
        model, _, _ = trained
        fresh = MTMLFQO(SMALL)
        fresh.attach_featurizer(db.name, featurizer)

        def mean_abs_log_error(m):
            total, count = 0.0, 0
            for item in labeled[:10]:
                preds = m.predict_cardinalities(db.name, [item])[0]
                true = np.maximum(item.node_cardinalities, 1.0)
                total += np.abs(np.log(preds) - np.log(true)).sum()
                count += item.num_nodes
            return total / count

        assert mean_abs_log_error(model) < mean_abs_log_error(fresh)

    def test_gradients_do_not_touch_featurizer(self, db, labeled, featurizer):
        """The paper: L_QO updates (S) and (T) only."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        before = {n: p.data.copy() for n, p in featurizer.named_parameters()}
        trainer = JointTrainer(model)
        trainer.train([(db.name, item) for item in labeled[:8]], epochs=2, batch_size=4)
        after = dict(featurizer.named_parameters())
        for name, original in before.items():
            np.testing.assert_array_equal(original, after[name].data)

    def test_single_task_configs(self, db, labeled, featurizer):
        for weights in ((1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)):
            config = ModelConfig(
                **{**SMALL.__dict__, "w_card": weights[0], "w_cost": weights[1], "w_jo": weights[2]}
            )
            model = MTMLFQO(config)
            model.attach_featurizer(db.name, featurizer)
            trainer = JointTrainer(model)
            result = trainer.train([(db.name, item) for item in labeled[:8]], epochs=2, batch_size=4)
            assert np.isfinite(result.final_loss)

    def test_all_tasks_disabled_raises(self):
        with pytest.raises(ValueError):
            joint_loss(None, None, None)

    def test_empty_training_set_raises(self, db, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        with pytest.raises(ValueError):
            JointTrainer(model).train([], epochs=1)

    def test_sequence_refinement_runs(self, db, labeled, featurizer):
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        examples = [(db.name, item) for item in labeled[:6]]
        trainer.train(examples, epochs=1, batch_size=4)
        result = trainer.refine_sequence_level(examples, epochs=1)
        assert np.isfinite(result.final_loss)


class TestSequenceLoss:
    def test_sequence_log_prob_negative(self, db, labeled, trained):
        model, _, _ = trained
        item = next(i for i in labeled if i.optimal_order and i.query.num_tables >= 2)
        shared, _, encodings = model.forward_batch(db.name, [item])
        memory = model.join_order_memory(shared[0], encodings[0], item.query.tables)
        log_p = sequence_log_prob(model.trans_jo, memory, order_positions(item))
        assert log_p.item() < 0.0

    def test_sequence_loss_penalizes_illegal(self, db, labeled, trained):
        model, _, _ = trained
        item = next(i for i in labeled if i.optimal_order and i.query.num_tables >= 3)
        shared, _, encodings = model.forward_batch(db.name, [item])
        memory = model.join_order_memory(shared[0], encodings[0], item.query.tables)
        positions = order_positions(item)
        other = list(reversed(positions))
        candidates = [BeamCandidate(positions=other, log_prob=-1.0, legal=False)]
        with_penalty = sequence_level_loss(model.trans_jo, memory, positions, candidates, penalty=10.0)
        without = sequence_level_loss(model.trans_jo, memory, positions, [], penalty=10.0)
        assert np.isfinite(with_penalty.item()) and np.isfinite(without.item())
        assert with_penalty.item() != without.item()


class TestMetaLearning:
    @pytest.fixture(scope="class")
    def fleet(self):
        dbs = generate_databases(3, base_seed=30, row_range=(60, 200), attr_range=(2, 3))
        workloads = []
        for i, database in enumerate(dbs):
            generator = WorkloadGenerator(
                database, WorkloadConfig(min_tables=2, max_tables=3, seed=i)
            )
            workloads.append(
                QueryLabeler(database).label_many(generator.generate(12), with_optimal_order=True)
            )
        return dbs, workloads

    def test_mla_pretrain_and_transfer(self, fleet):
        dbs, workloads = fleet
        mla = MLAConfig(
            encoder_queries_per_table=4, encoder_epochs=2, joint_epochs=3, fine_tune_epochs=1
        )
        meta = MetaLearner(SMALL, mla)
        meta.pretrain(dbs[:-1], workloads[:-1])
        # After pretraining, both training DBs have featurizers attached.
        assert dbs[0].name in meta.model.featurizers
        assert dbs[1].name in meta.model.featurizers
        meta.transfer(dbs[-1], fine_tune_workload=workloads[-1][:6])
        assert dbs[-1].name in meta.model.featurizers
        item = workloads[-1][-1]
        order = meta.model.predict_join_order(dbs[-1].name, item)
        assert sorted(order) == sorted(item.query.tables)

    def test_shared_modules_are_shared_across_dbs(self, fleet):
        """One (S)/(T) set serves all DBs: predictions differ only via (F)."""
        dbs, workloads = fleet
        mla = MLAConfig(encoder_queries_per_table=3, encoder_epochs=1, joint_epochs=2)
        meta = MetaLearner(SMALL, mla)
        meta.pretrain(dbs[:2], workloads[:2])
        shared_params_before = [p.data.copy() for p in meta.model.shared.parameters()]
        meta.transfer(dbs[2])  # no fine-tune: (S) must be untouched
        for before, param in zip(shared_params_before, meta.model.shared.parameters()):
            np.testing.assert_array_equal(before, param.data)

    def test_mismatched_inputs_raise(self, fleet):
        dbs, workloads = fleet
        meta = MetaLearner(SMALL, MLAConfig())
        with pytest.raises(ValueError):
            meta.pretrain(dbs[:2], workloads[:1])


class TestQErrorNodeLoss:
    def test_masked_positions_ignored(self):
        preds = nn.Tensor(np.zeros((1, 3)), requires_grad=True)
        targets = np.array([[1.0, 1.0, 1e6]])
        mask = np.array([[1.0, 1.0, 0.0]])
        loss = node_qerror_loss(preds, targets, mask=mask)
        assert loss.item() == pytest.approx(0.0)

    def test_floor_applied(self):
        preds = nn.Tensor(np.zeros((1, 1)), requires_grad=True)
        loss = node_qerror_loss(preds, np.array([[0.0]]))
        assert loss.item() == pytest.approx(0.0)
