"""Tests for the symbolic shape/dtype abstract interpreter (repro.analysis.shapes).

Four layers of evidence:

- **algebra** — the Dim polynomial normal form, shape-spec parsing, and
  the dtype lattice behave as documented;
- **seeded violations** — for every failure class (shape mismatch,
  implicit broadcast, dtype creep, desynced dual-mode pair) a fixture
  snippet seeded with the violation fires its checker, and the
  disciplined version of the same code stays silent;
- **real-source mutations** — a scratch copy of a *real* nn module with
  one line deleted from an ``infer_forward`` body, or one output dim
  changed, produces a finding (the acceptance criterion for the
  interpreter's sensitivity);
- **layer specs & enforcement** — every annotated ``repro.nn`` layer
  interprets cleanly against its own declared spec, and the real
  ``src/repro`` tree is clean under the three new checkers.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.checks import (
    DtypeChecker,
    DualModeParityChecker,
    ShapeChecker,
    all_checkers,
)
from repro.analysis.linter import Linter, SourceModule
from repro.analysis.shapes import (
    CANONICAL_DTYPE,
    STAR,
    Dim,
    fresh_dim,
    interpret_class,
    library_registry,
    parse_shape,
    promote,
    provably_different,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

# A real on-disk rel_path so the interpreter resolves cross-file specs.
NN_LAYERS = "src/repro/nn/layers.py"


def run_checker(checker, source: str, rel_path: str = "src/repro/nn/fixture.py"):
    module = SourceModule(source, rel_path)
    return [f for f in checker.check(module) if not module.suppressed(f)]


# ---------------------------------------------------------------------------
# Dim algebra and spec parsing
# ---------------------------------------------------------------------------
class TestDimAlgebra:
    def test_normal_form_makes_equality_semantic(self):
        d, h = Dim.sym("d"), Dim.sym("h")
        assert d + h == h + d
        assert d * h == h * d
        assert (d + d) == Dim.const(2) * d
        assert d - d == Dim.const(0)

    def test_exact_division_round_trips(self):
        d, h = Dim.sym("d"), Dim.sym("h")
        head = (d * h) / h
        assert head == d
        assert (d * h) / (h * h) != d  # inexact stays symbolic, not equal

    def test_provably_different_requires_no_fresh_symbols(self):
        d = Dim.sym("d")
        assert provably_different(d, Dim.sym("e"))
        assert provably_different(Dim.const(2), Dim.const(3))
        assert not provably_different(d, d)
        # A fresh placeholder is never provably anything.
        assert not provably_different(d, fresh_dim("j"))

    def test_subst_composes_through_products(self):
        d, h = Dim.sym("dim"), Dim.sym("heads")
        per_head = d / h
        assert per_head.subst({"dim": Dim.const(64), "heads": Dim.const(8)}) == Dim.const(8)


class TestParseShape:
    def test_symbols_constants_and_products(self):
        dims = parse_shape("(B, 2, dim * heads)")
        assert dims == (Dim.sym("B"), Dim.const(2), Dim.sym("dim") * Dim.sym("heads"))

    def test_leading_star(self):
        dims = parse_shape("(..., in_features)")
        assert dims[0] is STAR and dims[1] == Dim.sym("in_features")

    def test_star_only_allowed_in_leading_position(self):
        assert parse_shape("(B, ..., d)") is None

    def test_single_dim_and_garbage(self):
        assert parse_shape("(m,)") == (Dim.sym("m"),)
        assert parse_shape("not a shape (") is None


class TestDtypeLattice:
    def test_promotion_is_numpy_ordered(self):
        assert promote("bool", "int64") == "int64"
        assert promote("int64", "float32") == "float32"
        assert promote("float32", "float64") == "float64"
        assert promote("float64", "any") == "any"
        assert CANONICAL_DTYPE == "float64"


# ---------------------------------------------------------------------------
# Seeded violations — one fixture per failure class
# ---------------------------------------------------------------------------
class TestSeededShapeMismatch:
    BAD = """
import numpy as np
from repro import nn
from repro.nn.spec import shape_spec

class Proj(nn.Module):
    def __init__(self, d_in, d_out):
        super().__init__()
        self.d_in = d_in
        self.d_out = d_out
        self.weight = nn.Parameter(np.zeros((d_in, d_out)))

    @shape_spec(inputs={"x": "(B, d_in)"}, out="(B, d_in)", params=("weight",))
    def forward(self, x):
        return x.matmul(self.weight)
"""

    def test_return_shape_mismatch_fires(self):
        findings = run_checker(ShapeChecker(), self.BAD)
        assert len(findings) == 1
        assert findings[0].symbol == "Proj.forward"
        assert "d_out" in findings[0].message and "d_in" in findings[0].message

    def test_correct_spec_is_silent(self):
        good = self.BAD.replace('out="(B, d_in)"', 'out="(B, d_out)"')
        assert run_checker(ShapeChecker(), good) == []

    def test_elementwise_incompatible_dims_fire(self):
        source = """
from repro import nn
from repro.nn.spec import shape_spec

class Add(nn.Module):
    @shape_spec(inputs={"x": "(B, d)", "y": "(B, e)"}, out="(B, d)")
    def forward(self, x, y):
        return x + y
"""
        findings = run_checker(ShapeChecker(), source)
        assert len(findings) == 1
        assert "incompatible dims" in findings[0].message


class TestSeededBroadcast:
    BAD = """
from repro import nn
from repro.nn.spec import shape_spec

class Scale(nn.Module):
    @shape_spec(inputs={"x": "(B, L)", "gate": "(B, 1)"}, out="(B, L)")
    def forward(self, x, gate):
        return x * gate
"""

    def test_declared_size_one_stretch_fires(self):
        findings = run_checker(ShapeChecker(), self.BAD)
        assert len(findings) == 1
        assert "implicit broadcast" in findings[0].message
        assert "size-1" in findings[0].message

    def test_trailing_vector_add_is_idiomatic_and_silent(self):
        # bias/gamma-style rank-lowering broadcasts are not the silent-
        # stretch class and must not fire.
        source = """
from repro import nn
from repro.nn.spec import shape_spec

class Bias(nn.Module):
    @shape_spec(inputs={"x": "(B, L, d)", "bias": "(d,)"}, out="(B, L, d)")
    def forward(self, x, bias):
        return x + bias
"""
        assert run_checker(ShapeChecker(), source) == []


class TestSeededDtypeCreep:
    BAD = """
import numpy as np

def half(x):
    return x.astype(np.float32)

def mask(n):
    return np.zeros(n, dtype="float16")
"""

    def test_non_canonical_dtypes_fire_in_numeric_scope(self):
        findings = run_checker(DtypeChecker(), self.BAD, "src/repro/nn/fix.py")
        assert len(findings) == 2
        assert all(f.checker == "dtype-lattice" for f in findings)
        joined = " | ".join(f.message for f in findings)
        assert "float32" in joined and "float16" in joined

    def test_canonical_dtypes_are_silent(self):
        good = """
import numpy as np

def ok(x, n):
    return x.astype(np.float64) + np.zeros(n, dtype=np.int64) + np.ones(n, dtype=bool)
"""
        assert run_checker(DtypeChecker(), good, "src/repro/core/fix.py") == []

    def test_out_of_scope_file_is_ignored(self):
        # Tools/tests may use narrow dtypes freely; the canonical-dtype
        # rule binds only the numeric core.
        assert run_checker(DtypeChecker(), self.BAD, "src/repro/tools/fix.py") == []


class TestSeededParity:
    PAIRED = """
import numpy as np
from repro import nn
from repro.nn.spec import shape_spec
from repro.nn import kernels

class Layer(nn.Module):
    def __init__(self, d):
        super().__init__()
        self.d = d
        self.weight = nn.Parameter(np.zeros((d, d)))

    @shape_spec(inputs={"x": "(B, d)"}, out="(B, d)", params=("weight",))
    def forward(self, x):
        return kernels.relu(x.matmul(self.weight))

    @shape_spec(inputs={"x": "(B, d)"}, out="(B, d)", params=("weight",))
    def infer_forward(self, x):
        return kernels.relu(x.matmul(self.weight))
"""

    def test_synced_pair_is_silent(self):
        assert run_checker(DualModeParityChecker(), self.PAIRED) == []

    def test_out_spec_desync_fires(self):
        bad = self.PAIRED.replace(
            '@shape_spec(inputs={"x": "(B, d)"}, out="(B, d)", params=("weight",))\n    def infer_forward',
            '@shape_spec(inputs={"x": "(B, d)"}, out="(B, 1)", params=("weight",))\n    def infer_forward',
        )
        findings = run_checker(DualModeParityChecker(), bad)
        assert any("output spec" in f.message for f in findings)

    def test_param_set_desync_fires(self):
        bad = self.PAIRED.replace(
            'out="(B, d)", params=("weight",))\n    def infer_forward',
            'out="(B, d)", params=())\n    def infer_forward',
        )
        findings = run_checker(DualModeParityChecker(), bad)
        assert any("param" in f.message for f in findings)

    def test_op_set_desync_fires(self):
        bad = self.PAIRED.replace(
            "return kernels.relu(x.matmul(self.weight))\n",
            "return x.matmul(self.weight)\n", 1
        )
        # forward lost its relu; infer_forward still applies it.
        findings = run_checker(DualModeParityChecker(), bad)
        assert any("op set" in f.message and "relu" in f.message for f in findings)

    def test_half_decorated_pair_fires(self):
        bad = self.PAIRED.replace(
            '@shape_spec(inputs={"x": "(B, d)"}, out="(B, d)", params=("weight",))\n    def infer_forward',
            "def infer_forward",
        )
        findings = run_checker(DualModeParityChecker(), bad)
        assert len(findings) >= 1
        assert any("spec" in f.message for f in findings)


# ---------------------------------------------------------------------------
# Real-source mutations — the acceptance criterion
# ---------------------------------------------------------------------------
class TestRealSourceMutations:
    """A scratch copy of a real module with one seeded edit must produce
    a finding; the pristine copy must not."""

    def mutate(self, rel_path: str, old: str, new: str, count: int = -1) -> SourceModule:
        text = (SRC_ROOT.parent.parent / rel_path).read_text()
        assert old in text, f"mutation anchor vanished from {rel_path}: {old!r}"
        return SourceModule(text.replace(old, new, count), rel_path)

    def test_changing_linear_output_dim_fires(self):
        module = self.mutate(
            NN_LAYERS, 'out="(..., out_features)"', 'out="(..., in_features)"'
        )
        findings = ShapeChecker().check(module)
        symbols = {f.symbol for f in findings}
        # Both modes interpret against the (now wrong) declared out.
        assert {"Linear.forward", "Linear.infer_forward"} <= symbols
        assert all("out_features" in f.message for f in findings)

    def test_deleting_infer_forward_line_fires(self):
        module = self.mutate(
            "src/repro/nn/transformer.py",
            'hidden = kernels.relu(self.ff1.infer_forward(normed, scratch=scratch, tag=tag + ".ff1"))',
            'hidden = self.ff1.infer_forward(normed, scratch=scratch, tag=tag + ".ff1")',
        )
        findings = DualModeParityChecker().check(module)
        assert any(
            "relu" in f.message and f.symbol.endswith("infer_forward")
            for f in findings
        )

    def test_desyncing_declared_params_fires(self):
        module = self.mutate(
            NN_LAYERS,
            'out="(..., out_features)",\n                params=("weight", "bias"))\n    def infer_forward',
            'out="(..., out_features)",\n                params=("weight",))\n    def infer_forward',
        )
        findings = DualModeParityChecker().check(module)
        assert any("param" in f.message and "Linear" in f.symbol for f in findings)

    @pytest.mark.parametrize(
        "rel_path",
        [
            "src/repro/nn/layers.py",
            "src/repro/nn/attention.py",
            "src/repro/nn/lstm.py",
            "src/repro/nn/transformer.py",
            "src/repro/nn/positional.py",
            "src/repro/nn/kernels.py",
        ],
    )
    def test_pristine_module_is_silent(self, rel_path):
        text = (SRC_ROOT.parent.parent / rel_path).read_text()
        module = SourceModule(text, rel_path)
        for checker in (ShapeChecker(), DtypeChecker(), DualModeParityChecker()):
            findings = checker.check(module)
            assert findings == [], "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# Symbolic specs of every repro.nn layer
# ---------------------------------------------------------------------------
# Every param-bearing layer of the substrate and its annotated methods.
LAYER_METHODS = {
    "Linear": {"forward", "infer_forward"},
    "LayerNorm": {"forward", "infer_forward"},
    "Embedding": {"forward"},  # lookup layers have no no-tape twin
    "Dropout": {"forward"},  # identity when not training; no twin
    "MLP": {"forward", "infer_forward"},
    "LSTMCell": {"forward", "infer_forward"},
    "LSTM": {"forward", "infer_forward"},
    "ChildSumTreeLSTM": set(),  # tree recursion: node_forward is data-dependent
    "MultiHeadAttention": {"forward", "infer_forward"},
    "TransformerEncoderLayer": {"forward", "infer_forward"},
    "TransformerEncoder": {"forward", "infer_forward"},
    "TransformerDecoderLayer": {"forward", "infer_forward"},
    "TransformerDecoder": {"forward", "infer_forward"},
}


class TestLayerSpecs:
    @pytest.fixture(scope="class")
    def registry(self):
        registry = library_registry(NN_LAYERS)
        assert registry is not None, "library registry must load from the repo tree"
        return registry

    @pytest.mark.parametrize("layer", sorted(LAYER_METHODS))
    def test_layer_is_annotated_and_interprets_cleanly(self, registry, layer):
        info = registry.classes[layer]
        assert LAYER_METHODS[layer] <= set(info.methods), (
            f"{layer} is missing @shape_spec on {LAYER_METHODS[layer] - set(info.methods)}"
        )
        problems = interpret_class(registry, info)
        assert problems == [], "\n".join(p.message for p in problems)

    DUAL_MODE = sorted(
        layer for layer, methods in LAYER_METHODS.items() if "infer_forward" in methods
    )

    @pytest.mark.parametrize("layer", DUAL_MODE)
    def test_dual_modes_declare_identical_specs(self, registry, layer):
        info = registry.classes[layer]
        forward = info.methods["forward"]
        infer = info.methods["infer_forward"]
        assert forward.raw_out == infer.raw_out
        assert forward.params == infer.params

    def test_kernels_are_annotated(self, registry):
        for kernel in ("matmul", "linear", "layer_norm", "relu", "sigmoid",
                       "softmax", "log_softmax", "masked_fill"):
            assert kernel in registry.functions, f"kernels.{kernel} lost its @shape_spec"

    def test_positional_encodings_are_annotated(self, registry):
        assert parse_shape(registry.functions["sinusoidal_encoding"].raw_out) == (
            Dim.sym("length"), Dim.sym("dim"),
        )
        assert "tree_path_encoding" in registry.functions


# ---------------------------------------------------------------------------
# the enforcement test: the real tree is clean under the new checkers
# ---------------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_repro_has_zero_shape_findings(self):
        linter = Linter([ShapeChecker(), DtypeChecker(), DualModeParityChecker()])
        findings = linter.run_paths([SRC_ROOT], root=SRC_ROOT.parent.parent)
        assert findings == [], "\n" + "\n".join(f.format() for f in findings)
        # And the stats the CLI exposes account for every checker.
        assert set(linter.stats) == {"shape-spec", "dtype-lattice", "dual-mode-parity"}


# ---------------------------------------------------------------------------
# CLI: --only / --list-checkers / per-checker stats
# ---------------------------------------------------------------------------
class TestCLI:
    BAD_FILE = "import time\n\ndef f():\n    return time.time()\n"

    def test_list_checkers_names_every_registered_checker(self, capsys):
        assert analysis_main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for checker in all_checkers():
            assert checker.name in out

    def test_only_restricts_to_named_checkers(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD_FILE)
        # wall-clock violation is invisible to the shape checker...
        assert analysis_main(
            [str(tmp_path), "--no-baseline", "--fail-on-findings", "--only", "shape-spec"]
        ) == 0
        # ...and caught when its own checker is selected.
        assert analysis_main(
            [str(tmp_path), "--no-baseline", "--fail-on-findings",
             "--only", "wall-clock", "--only", "shape-spec"]
        ) == 1
        assert "[wall-clock]" in capsys.readouterr().out

    def test_unknown_only_name_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analysis_main([str(tmp_path), "--only", "no-such-checker"])
        assert excinfo.value.code == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_json_reports_per_checker_counts_and_wall_time(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD_FILE)
        assert analysis_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["checkers"]
        assert stats["wall-clock"]["findings"] == 1
        assert stats["shape-spec"]["findings"] == 0
        assert all(
            entry["seconds"] >= 0 and isinstance(entry["findings"], int)
            for entry in stats.values()
        )
