"""Edge cases of ``eval.metrics.latency_stats``.

The serving layer's latency percentiles feed the benchmark gates, so
their contract is pinned down here: nearest-rank percentiles (every
reported figure is an observed sample), degenerate single-sample
behavior, and loud rejection of NaN samples.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import latency_stats


class TestLatencyStatsEdges:
    def test_empty_sample_is_none(self):
        assert latency_stats([]) is None
        assert latency_stats(iter(())) is None

    def test_single_sample_percentiles_collapse(self):
        stats = latency_stats([0.125])
        assert stats.count == 1
        assert stats.mean == 0.125
        assert stats.p50 == stats.p95 == stats.p99 == stats.max == 0.125

    def test_two_samples_lower_rank(self):
        """Nearest-rank 'lower': p50 of [a, b] is a, never (a+b)/2."""
        stats = latency_stats([0.1, 0.3])
        assert stats.p50 == 0.1
        assert stats.max == 0.3

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            latency_stats([0.1, float("nan"), 0.2])

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="2 NaN"):
            latency_stats([float("nan"), float("nan")])

    def test_accepts_any_iterable(self):
        from collections import deque

        stats = latency_stats(deque([0.2, 0.1, 0.4]))
        assert stats.count == 3
        assert stats.max == 0.4


class TestNearestRankProperty:
    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_every_percentile_is_an_observed_sample(self, samples):
        stats = latency_stats(samples)
        observed = set(np.asarray(samples, dtype=np.float64).tolist())
        for figure in (stats.p50, stats.p95, stats.p99, stats.max):
            assert figure in observed

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_percentiles_ordered_and_bounded(self, samples):
        stats = latency_stats(samples)
        assert min(samples) <= stats.p50 <= stats.p95 <= stats.p99 <= stats.max
        assert stats.max == max(samples)
        assert math.isclose(stats.mean, float(np.mean(samples)), rel_tol=1e-12, abs_tol=1e-12)
