"""Failure injection and edge-case robustness across the stack."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import DatabaseFeaturizer, JointTrainer, ModelConfig, MTMLFQO
from repro.datagen import generate_database
from repro.engine import ExecutionLimitError, execute_plan, left_deep_plan, scan_node
from repro.engine.operators import JoinExpansionError, equi_join_positions
from repro.optimizer import TrueCardinalityOracle
from repro.sql import Conjunction, Query, parse_query
from repro.storage import Database, JoinRelation, Table
from repro.workload import LabeledQuery, QueryLabeler, WorkloadConfig, WorkloadGenerator

TINY = ModelConfig(d_model=16, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=2, num_tables=6, row_range=(60, 200), attr_range=(2, 3))


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, TINY)
    feat.train_encoders(queries_per_table=3, epochs=1)
    return feat


class TestJoinExplosionGuard:
    def test_equi_join_cap(self):
        left = np.zeros(1000, dtype=np.int64)
        right = np.zeros(1000, dtype=np.int64)
        with pytest.raises(JoinExpansionError):
            equi_join_positions(left, right, max_pairs=10_000)

    def test_executor_converts_to_limit_error(self):
        a = Table.from_dict("a", {"k": np.zeros(2000, dtype=np.int64)})
        b = Table.from_dict("b", {"k": np.zeros(2000, dtype=np.int64)})
        database = Database("boom", [a, b])
        database.add_join(JoinRelation("a", "k", "b", "k"))
        query = parse_query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k")
        plan = left_deep_plan(query, ["a", "b"])
        with pytest.raises(ExecutionLimitError):
            execute_plan(plan, database, max_intermediate_rows=100_000)

    def test_oracle_respects_cap(self):
        a = Table.from_dict("a", {"k": np.zeros(2000, dtype=np.int64)})
        b = Table.from_dict("b", {"k": np.zeros(2000, dtype=np.int64)})
        database = Database("boom2", [a, b])
        database.add_join(JoinRelation("a", "k", "b", "k"))
        query = parse_query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k")
        oracle = TrueCardinalityOracle(database, max_intermediate_rows=100_000)
        with pytest.raises(ExecutionLimitError):
            oracle.estimate(query, frozenset(["a", "b"]))

    def test_labeler_drops_exploding_queries(self):
        a = Table.from_dict("a", {"k": np.zeros(3000, dtype=np.int64)})
        b = Table.from_dict("b", {"k": np.zeros(3000, dtype=np.int64)})
        database = Database("boom3", [a, b])
        database.add_join(JoinRelation("a", "k", "b", "k"))
        query = parse_query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k")
        labeler = QueryLabeler(database, max_intermediate_rows=10_000)
        assert labeler.label(query) is None
        assert labeler.label_many([query]) == []


class TestSingleTableQueries:
    def test_model_handles_single_table_plan(self, db, featurizer):
        table = db.table_names[0]
        query = Query(tables=[table], joins=[], filters={})
        labeled = QueryLabeler(db).label(query)
        assert labeled is not None
        assert labeled.num_nodes == 1
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        cards = model.predict_cardinalities(db.name, [labeled])[0]
        assert cards.shape == (1,)
        order = model.predict_join_order(db.name, labeled)
        assert order == [table]

    def test_training_with_mixed_table_counts(self, db, featurizer):
        generator = WorkloadGenerator(db, WorkloadConfig(min_tables=1, max_tables=3, seed=5))
        labeled = QueryLabeler(db).label_many(generator.generate(12), with_optimal_order=True)
        assert any(item.query.num_tables == 1 for item in labeled)
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        result = trainer.train([(db.name, item) for item in labeled], epochs=2, batch_size=4)
        assert np.isfinite(result.final_loss)


class TestDegenerateData:
    def test_zero_row_table_statistics(self):
        t = Table.from_dict("empty", {"a": np.array([], dtype=np.int64)})
        database = Database("emptydb", [t])
        stats = database.statistics("empty")
        assert stats.num_rows == 0
        assert stats.column("a").n_distinct == 0

    def test_scan_on_empty_table(self):
        t = Table.from_dict("empty", {"a": np.array([], dtype=np.int64)})
        database = Database("emptydb2", [t])
        plan = scan_node("empty")
        result = execute_plan(plan, database)
        assert result.cardinality == 0

    def test_constant_column_histogram(self):
        t = Table.from_dict("const", {"a": np.full(100, 7)})
        database = Database("constdb", [t])
        hist = database.statistics("const").column("a").histogram
        assert hist.selectivity_le(7) == 1.0
        assert hist.selectivity_le(6.9) == 0.0

    def test_zero_cardinality_labels_trainable(self, db, featurizer):
        """Queries with empty results must not produce NaN losses."""
        generator = WorkloadGenerator(
            db, WorkloadConfig(min_tables=2, max_tables=3, seed=11, filter_probability=1.0)
        )
        labeled = QueryLabeler(db).label_many(generator.generate(15))
        zero_card = [item for item in labeled if item.cardinality == 0]
        if not zero_card:
            pytest.skip("no zero-result queries generated")
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        result = trainer.train([(db.name, item) for item in zero_card], epochs=2, batch_size=4)
        assert np.isfinite(result.final_loss)


class TestModelPersistence:
    def test_full_model_state_roundtrip(self, db, featurizer, tmp_path):
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        path = str(tmp_path / "mtmlf")
        nn.save_module(model, path)
        clone = MTMLFQO(TINY)
        clone.attach_featurizer(db.name, featurizer)
        # Perturb, then restore.
        for p in clone.shared_task_parameters():
            p.data += 1.0
        nn.load_module(clone, path)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_featurizer_state_roundtrip(self, db, featurizer, tmp_path):
        path = str(tmp_path / "feat")
        nn.save_module(featurizer, path)
        clone = DatabaseFeaturizer(db, TINY, seed=99)
        nn.load_module(clone, path)
        table = db.table_names[0]
        conj = Conjunction(table=table, predicates=())
        with nn.no_grad():
            a = featurizer.encode_filter(conj).data
            b = clone.encode_filter(conj).data
        np.testing.assert_allclose(a, b)


class TestNumericalStability:
    def test_training_extreme_cardinalities(self, db, featurizer):
        """Labels spanning 1..1e9 must keep gradients finite."""
        table = db.table_names[0]
        query = Query(tables=[table], joins=[], filters={})
        base = QueryLabeler(db).label(query)
        extreme = [
            LabeledQuery(
                query=base.query,
                plan=base.plan,
                node_cardinalities=[value],
                node_costs=[float(value)],
                total_time_ms=float(value),
            )
            for value in (1, 10**9)
        ]
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        result = trainer.train([(db.name, item) for item in extreme], epochs=3, batch_size=2)
        assert np.isfinite(result.final_loss)
        for p in model.shared_task_parameters():
            assert np.isfinite(p.data).all()
