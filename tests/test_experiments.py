"""Micro-scale integration tests for the Table 1/2/3 harnesses.

These run the *same code paths* as the benchmarks, at the smallest
scale that still exercises every row of every table.
"""

import numpy as np
import pytest

from repro.core import MLAConfig, ModelConfig
from repro.datagen import generate_databases, imdb_like
from repro.eval import (
    SingleDBStudy,
    StudyConfig,
    format_table1,
    format_table2,
    format_table3,
    run_table3,
)

MICRO_MODEL = ModelConfig(d_model=24, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


@pytest.fixture(scope="module")
def study():
    db = imdb_like(seed=0, scale=0.12, fk_skew=1.2, fk_correlation=0.7)
    config = StudyConfig(
        num_queries=90,
        max_tables=4,
        model=MICRO_MODEL,
        encoder_queries_per_table=5,
        encoder_epochs=2,
        joint_epochs=4,
        treelstm_epochs=2,
        batch_size=8,
    )
    s = SingleDBStudy(db, config)
    s.prepare()
    return s


class TestSingleDBStudy:
    def test_prepare_splits(self, study):
        assert len(study.train) > len(study.test) > 0

    def test_table1_all_rows(self, study):
        rows = study.table1(with_ablations=True)
        names = [r.method for r in rows]
        assert names == ["PostgreSQL", "Tree-LSTM", "MTMLF-QO", "MTMLF-CardEst", "MTMLF-CostEst"]
        for row in rows:
            assert row.card is not None or row.cost is not None
        # Ablation rows report only their own task, like the paper.
        by_name = {r.method: r for r in rows}
        assert by_name["MTMLF-CardEst"].cost is None
        assert by_name["MTMLF-CostEst"].card is None
        text = format_table1(rows)
        assert "MTMLF-QO" in text

    def test_table2_all_rows(self, study):
        rows = study.table2(with_ablation=True)
        names = [r.method for r in rows]
        assert names == ["PostgreSQL", "Optimal", "MTMLF-QO", "MTMLF-JoinSel"]
        by_name = {r.method: r for r in rows}
        # "Optimal" orders minimise simulated time under true cards and
        # cost-optimal ops; evaluation re-chooses ops from histogram
        # estimates, so allow a small tolerance.
        assert by_name["Optimal"].total_time_ms <= by_name["PostgreSQL"].total_time_ms * 1.02
        assert by_name["PostgreSQL"].improvement is None
        assert 0.0 <= by_name["MTMLF-QO"].optimal_fraction <= 1.0
        assert "Optimal" in format_table2(rows)

    def test_models_cached_across_tables(self, study):
        model_a = study.train_mtmlf("MTMLF-QO")
        model_b = study.train_mtmlf("MTMLF-QO")
        assert model_a is model_b

    def test_unprepared_study_raises(self):
        db = imdb_like(seed=1, scale=0.05)
        fresh = SingleDBStudy(db, StudyConfig(model=MICRO_MODEL))
        with pytest.raises(RuntimeError):
            fresh.table1()


class TestTable3:
    def test_run_table3_micro(self):
        databases = generate_databases(3, base_seed=50, row_range=(60, 250), attr_range=(2, 3))
        rows = run_table3(
            databases,
            num_queries=25,
            max_tables=3,
            mla_config=MLAConfig(
                encoder_queries_per_table=4, encoder_epochs=2, joint_epochs=3, fine_tune_epochs=1
            ),
            model_config=MICRO_MODEL,
        )
        names = [r.method for r in rows]
        assert names == ["PostgreSQL", "MTMLF-QO (MLA)", "MTMLF-QO (single)"]
        for row in rows:
            assert np.isfinite(row.total_time_ms) and row.total_time_ms > 0
        assert "MLA" in format_table3(rows)

    def test_too_few_databases_rejected(self):
        databases = generate_databases(2, base_seed=60, row_range=(50, 100))
        with pytest.raises(ValueError):
            run_table3(databases)
