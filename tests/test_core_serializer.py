"""Tests for the tree codec (Section 4.1, Figures 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinTree,
    decoding_embeddings,
    join_tree_from_order,
    join_tree_from_plan,
    serialize_plan,
    tree_from_embeddings,
)
from repro.engine import left_deep_plan
from repro.sql import Query
from repro.storage import JoinRelation


def left_deep_4():
    """The paper's Figure 3(a): j(j(j(T1,T2),T3),T4)."""
    return join_tree_from_order(["T1", "T2", "T3", "T4"])


def bushy_4():
    """The paper's Figure 3(b): j(j(T1,T2), j(T3,T4))."""
    return JoinTree(
        left=JoinTree(left=JoinTree(table="T1"), right=JoinTree(table="T2")),
        right=JoinTree(left=JoinTree(table="T3"), right=JoinTree(table="T4")),
    )


class TestJoinTree:
    def test_leaves_order(self):
        assert left_deep_4().leaves() == ["T1", "T2", "T3", "T4"]

    def test_depths(self):
        assert left_deep_4().depth() == 3
        assert bushy_4().depth() == 2

    def test_left_deep_detection(self):
        assert left_deep_4().is_left_deep()
        assert not bushy_4().is_left_deep()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            JoinTree()
        with pytest.raises(ValueError):
            JoinTree(table="T1", left=JoinTree(table="T2"), right=JoinTree(table="T3"))

    def test_equality(self):
        assert left_deep_4() == join_tree_from_order(["T1", "T2", "T3", "T4"])
        assert left_deep_4() != bushy_4()

    def test_from_plan(self):
        query = Query(
            tables=["a", "b"],
            joins=[JoinRelation("a", "x", "b", "y")],
        )
        plan = left_deep_plan(query, ["a", "b"])
        tree = join_tree_from_plan(plan)
        assert tree.leaves() == ["a", "b"]


class TestPaperExamples:
    """Figure 4's exact decoding embeddings."""

    def test_left_deep_embeddings(self):
        emb = decoding_embeddings(left_deep_4())
        np.testing.assert_array_equal(emb["T1"], [1, 0, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T2"], [0, 1, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T3"], [0, 0, 1, 1, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T4"], [0, 0, 0, 0, 1, 1, 1, 1])

    def test_bushy_embeddings(self):
        emb = decoding_embeddings(bushy_4())
        np.testing.assert_array_equal(emb["T1"], [1, 0, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T2"], [0, 1, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T3"], [0, 0, 1, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(emb["T4"], [0, 0, 0, 1, 0, 0, 0, 0])

    def test_left_deep_roundtrip(self):
        assert tree_from_embeddings(decoding_embeddings(left_deep_4())) == left_deep_4()

    def test_bushy_roundtrip(self):
        assert tree_from_embeddings(decoding_embeddings(bushy_4())) == bushy_4()


class TestCodecEdgeCases:
    def test_single_leaf(self):
        tree = JoinTree(table="only")
        emb = decoding_embeddings(tree)
        np.testing.assert_array_equal(emb["only"], [1])
        assert tree_from_embeddings(emb) == tree

    def test_two_leaves(self):
        tree = join_tree_from_order(["A", "B"])
        emb = decoding_embeddings(tree)
        np.testing.assert_array_equal(emb["A"], [1, 0])
        np.testing.assert_array_equal(emb["B"], [0, 1])

    def test_width_override(self):
        emb = decoding_embeddings(join_tree_from_order(["A", "B"]), width=8)
        np.testing.assert_array_equal(emb["A"], [1, 0, 0, 0, 0, 0, 0, 0])
        assert tree_from_embeddings(emb) == join_tree_from_order(["A", "B"])

    def test_width_too_small_rejected(self):
        with pytest.raises(ValueError):
            decoding_embeddings(left_deep_4(), width=4)

    def test_width_not_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            decoding_embeddings(left_deep_4(), width=12)

    def test_conflicting_embeddings_rejected(self):
        with pytest.raises(ValueError):
            tree_from_embeddings({"A": np.array([1.0, 1.0]), "B": np.array([0.0, 1.0])})

    def test_unclaimed_interior_slot_rejected(self):
        with pytest.raises(ValueError):
            tree_from_embeddings({"A": np.array([1.0, 0.0, 0.0, 1.0]), "B": np.array([0.0, 1.0, 0.0, 0.0])})


@st.composite
def random_join_tree(draw, max_leaves=6):
    """Random binary tree over distinct table names."""
    num_leaves = draw(st.integers(min_value=1, max_value=max_leaves))
    names = [f"T{i}" for i in range(num_leaves)]

    def build(leaf_names):
        if len(leaf_names) == 1:
            return JoinTree(table=leaf_names[0])
        split = draw(st.integers(min_value=1, max_value=len(leaf_names) - 1))
        return JoinTree(left=build(leaf_names[:split]), right=build(leaf_names[split:]))

    return build(names)


class TestCodecProperties:
    @given(random_join_tree())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_any_tree(self, tree):
        assert tree_from_embeddings(decoding_embeddings(tree)) == tree

    @given(random_join_tree())
    @settings(max_examples=60, deadline=None)
    def test_embeddings_partition_natural_width(self, tree):
        """Claimed slots partition [0, 2^depth) with no overlap."""
        emb = decoding_embeddings(tree)
        total = sum(v.sum() for v in emb.values())
        natural = 2 ** tree.depth()
        assert total == natural
        stacked = np.stack(list(emb.values()))
        assert (stacked.sum(axis=0) <= 1.0).all()

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=7, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_left_deep_order_roundtrip(self, ids):
        order = [f"T{i}" for i in ids]
        tree = join_tree_from_order(order)
        recovered = tree_from_embeddings(decoding_embeddings(tree))
        assert recovered.leaves() == order


class TestSerializePlan:
    def _plan(self):
        query = Query(
            tables=["a", "b", "c"],
            joins=[JoinRelation("a", "x", "b", "y"), JoinRelation("b", "z", "c", "w")],
        )
        return left_deep_plan(query, ["a", "b", "c"])

    def test_preorder_positions(self):
        nodes, positions = serialize_plan(self._plan())
        assert len(nodes) == 5
        assert positions[0].path == ()          # root
        assert positions[1].path == (0,)        # left child (join a-b)
        assert positions[2].path == (0, 0)      # scan a
        assert positions[3].path == (0, 1)      # scan b
        assert positions[4].path == (1,)        # scan c

    def test_positions_unique(self):
        _, positions = serialize_plan(self._plan())
        assert len({p.path for p in positions}) == len(positions)
