"""Tests for the federated multi-tenant serving fleet (repro.federation)."""

import dataclasses
import threading

import numpy as np
import pytest

from repro.analysis import LockMonitor, instrument_collector, instrument_model, instrument_service
from repro.core import (
    DatabaseFeaturizer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    SHARED_MODULE_PREFIXES,
)
from repro.datagen import generate_databases
from repro.eval import format_fleet_report, join_order_execution_time, worst_legal_order
from repro.federation import FleetConfig, FleetCoordinator, FleetReport, TenantNode
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator, traffic_stream

TINY = ModelConfig(d_model=16, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


def tiny_fleet_config(**overrides) -> FleetConfig:
    defaults = dict(
        fine_tune_epochs=2,
        batch_size=8,
        min_new_experience=4,
        validation_fraction=0.25,
        encoder_queries_per_table=3,
        encoder_epochs=1,
        poll_interval_s=0.05,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def fixture():
    """Three tenant databases with featurizers + labeled pools, and a
    global (S)/(T) state pre-trained on the first two tenants' pools."""
    dbs = generate_databases(3, base_seed=81, row_range=(60, 200), attr_range=(2, 3))
    tenants = []
    for i, db in enumerate(dbs):
        featurizer = DatabaseFeaturizer(db, TINY)
        featurizer.train_encoders(queries_per_table=3, epochs=1, seed=i)
        generator = WorkloadGenerator(db, WorkloadConfig(min_tables=3, max_tables=4, seed=20 + i))
        pool = [
            item
            for item in QueryLabeler(db).label_many(generator.generate(16), with_optimal_order=True)
            if item.optimal_order is not None
        ]
        assert len(pool) >= 8
        tenants.append((db, featurizer, pool))
    pretrain = MTMLFQO(TINY)
    for db, featurizer, _ in tenants[:2]:
        pretrain.attach_featurizer(db.name, featurizer)
    JointTrainer(pretrain).train(
        [(db.name, item) for db, _, pool in tenants[:2] for item in pool[:8]],
        epochs=2,
        batch_size=8,
    )
    return tenants, pretrain.state_dict()


def make_tenant(db, featurizer, global_state, config, name=None) -> TenantNode:
    model = MTMLFQO(TINY)
    model.load_state_dict(global_state)
    model.attach_featurizer(db.name, featurizer)
    return TenantNode(db, model, config=config, name=name)


class TestTenantNode:
    def test_local_update_skips_below_threshold(self, fixture):
        tenants, global_state = fixture
        db, featurizer, pool = tenants[0]
        tenant = make_tenant(db, featurizer, global_state, tiny_fleet_config(min_new_experience=6))
        assert tenant.inject_experience(pool[:3]) == 3
        assert tenant.local_update(global_state) is None
        assert tenant.counters()["rounds_skipped"] == 1
        assert tenant.pending_experience() == 3  # nothing consumed

    def test_local_update_ships_shared_state_only(self, fixture):
        tenants, global_state = fixture
        db, featurizer, pool = tenants[0]
        tenant = make_tenant(db, featurizer, global_state, tiny_fleet_config())
        tenant.inject_experience(pool[:6])
        update = tenant.local_update(global_state)
        assert update is not None
        state, num_examples = update
        assert state, "client update must carry parameters"
        assert all(name.startswith(SHARED_MODULE_PREFIXES) for name in state)
        assert not any(name.startswith("featurizers.") for name in state)
        assert 0 < num_examples < 6  # validation slice held out
        assert tenant.pending_experience() == 0
        assert tenant.counters()["rounds_participated"] == 1

    def test_optimizer_state_carries_across_local_rounds(self, fixture):
        tenants, global_state = fixture
        db, featurizer, pool = tenants[0]
        tenant = make_tenant(db, featurizer, global_state, tiny_fleet_config(fine_tune_epochs=1))
        tenant.inject_experience(pool[:4])
        tenant.local_update(global_state)
        first_t = tenant._optimizer_state["t"]
        tenant.inject_experience(pool[4:8])
        tenant.local_update(global_state)
        assert tenant._optimizer_state["t"] > first_t

    def test_inject_experience_dedups_by_signature(self, fixture):
        tenants, global_state = fixture
        db, featurizer, pool = tenants[1]
        tenant = make_tenant(db, featurizer, global_state, tiny_fleet_config())
        assert tenant.inject_experience(pool[:4]) == 4
        assert tenant.inject_experience(pool[:4]) == 0

    def test_fleet_num_replicas_reaches_tenant_service(self, fixture):
        """Tenants onboarded without an explicit serve_config serve
        through a replica pool sized by the fleet config."""
        tenants, global_state = fixture
        db, featurizer, pool = tenants[0]
        config = tiny_fleet_config(num_replicas=2)
        tenant = make_tenant(db, featurizer, global_state, config)
        assert tenant.service.config.num_replicas == 2
        direct = tenant.live_model.predict_join_orders(db.name, pool[:4])
        with tenant:
            served = [tenant.optimize(item) for item in pool[:4]]
            report = tenant.report()
        assert served == direct
        assert report.num_replicas == 2
        assert len(report.replica_batches) == 2

    def test_consider_global_without_experience_keeps_live_model(self, fixture):
        tenants, global_state = fixture
        db, featurizer, _ = tenants[2]
        tenant = make_tenant(db, featurizer, global_state, tiny_fleet_config())
        live = tenant.live_model
        assert tenant.consider_global(global_state) is None
        assert tenant.live_model is live
        assert tenant.counters()["gate_unvalidated"] == 1


class TestFleetRounds:
    def test_round_merges_checkpoints_and_pushes(self, fixture, tmp_path):
        tenants, global_state = fixture
        config = tiny_fleet_config(checkpoint_dir=str(tmp_path))
        fleet = FleetCoordinator(TINY, config)
        fleet.global_model.load_state_dict(global_state)
        for db, featurizer, pool in tenants[:2]:
            tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
            tenant.inject_experience(pool[:6])
        before = {k: v.copy() for k, v in fleet.global_state().items()}
        round_ = fleet.run_round()
        assert round_.merged
        assert sorted(name for name, _ in round_.participants) == sorted(
            db.name for db, _, _ in tenants[:2]
        )
        assert round_.checkpoint_path is not None and round_.checkpoint_path.endswith(".npz")
        import os

        assert os.path.exists(round_.checkpoint_path)
        gated = set(round_.accepted) | set(round_.rejected) | set(round_.unvalidated)
        assert gated == {db.name for db, _, _ in tenants[:2]}
        if not round_.reverted:
            after = fleet.global_state()
            assert any(not np.array_equal(before[k], after[k]) for k in before)
        # Accepted tenants actually serve the merged model.
        for name in round_.accepted:
            tenant = fleet.tenants[name]
            for key, value in fleet.global_state().items():
                np.testing.assert_array_equal(tenant.live_model.state_dict()[key], value)

    def test_round_without_fresh_experience_is_a_noop(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            db, featurizer, _ = tenants[0]
            fleet.register(make_tenant(db, featurizer, global_state, config))
            before = {k: v.copy() for k, v in fleet.global_state().items()}
            round_ = fleet.run_round()
            assert not round_.merged
            assert round_.checkpoint_path is None
            assert round_.skipped == [db.name]
            after = fleet.global_state()
            for key in before:
                np.testing.assert_array_equal(before[key], after[key])

    def test_onboard_deploys_global_zero_shot(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            db, featurizer, pool = tenants[2]
            tenant = fleet.onboard(db, featurizer=featurizer)
            assert tenant.name in fleet.tenants
            # Zero-shot: the tenant's (S)/(T) is exactly the global state.
            live_state = tenant.live_model.state_dict()
            for key, value in fleet.global_state().items():
                np.testing.assert_array_equal(live_state[key], value)
            with tenant:
                order = tenant.optimize(pool[0])
            assert sorted(order) == sorted(pool[0].query.tables)

    def test_duplicate_registration_rejected(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config()
        fleet = FleetCoordinator(TINY, config)
        db, featurizer, _ = tenants[0]
        fleet.register(make_tenant(db, featurizer, global_state, config))
        with pytest.raises(ValueError, match="already registered"):
            fleet.register(make_tenant(db, featurizer, global_state, config))

    def test_poisoned_tenant_round_is_gate_blocked(self, fixture):
        """A tenant trained on worst-order labels cannot reach any live
        model: every gate rejects, the swap never happens, and the
        coordinator reverts the global lineage."""
        tenants, global_state = fixture
        config = tiny_fleet_config(validation_fraction=0.4)
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            nodes = []
            for db, featurizer, pool in tenants[:2]:
                tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
                tenant.inject_experience(pool[:6])
                nodes.append(tenant)
            fleet.run_round()  # healthy round; consumes all fresh experience

            # Poison tenant 1 with fresh (unseen-signature) experience
            # whose JoinSel labels are the worst sampled legal orders,
            # fine-tuned hot (big lr, many epochs) so the divergence is
            # unmistakable on every database.
            config.learning_rate = 0.05
            config.fine_tune_epochs = 15
            poison_db, _, poison_pool = tenants[1]
            poisoned = [
                dataclasses.replace(item, optimal_order=worst_legal_order(poison_db, item))
                for item in poison_pool[6:14]
            ]
            assert nodes[1].inject_experience(poisoned) >= config.min_new_experience

            live_before = [node.live_model for node in nodes]
            orders_before = [
                [node.live_model.predict_join_order(db.name, item) for item in pool[:6]]
                for node, (db, _, pool) in zip(nodes, tenants[:2])
            ]
            global_before = {k: v.copy() for k, v in fleet.global_state().items()}

            round_ = fleet.run_round()
            assert [name for name, _ in round_.participants] == [poison_db.name]
            assert not round_.accepted
            assert round_.reverted
            # Every live model — and every served order — is unchanged.
            for node, live in zip(nodes, live_before):
                assert node.live_model is live
            orders_after = [
                [node.live_model.predict_join_order(db.name, item) for item in pool[:6]]
                for node, (db, _, pool) in zip(nodes, tenants[:2])
            ]
            assert orders_after == orders_before
            # The poisoned merge did not linger in the global lineage.
            global_after = fleet.global_state()
            for key in global_before:
                np.testing.assert_array_equal(global_before[key], global_after[key])

    def test_crashing_tenant_is_recorded_not_silent(self, fixture):
        """A tenant whose local update raises lands in round.failed (not
        'skipped'), the counter bumps, and the rest of the round runs."""
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            healthy_db, healthy_featurizer, healthy_pool = tenants[0]
            healthy = fleet.register(
                make_tenant(healthy_db, healthy_featurizer, global_state, config)
            )
            healthy.inject_experience(healthy_pool[:6])
            broken_db, broken_featurizer, broken_pool = tenants[1]
            broken = fleet.register(
                make_tenant(broken_db, broken_featurizer, global_state, config)
            )
            broken.inject_experience(broken_pool[:6])
            broken.local_update = lambda *_: (_ for _ in ()).throw(RuntimeError("boom"))
            round_ = fleet.run_round()
            assert round_.failed == [broken.name]
            assert [name for name, _ in round_.participants] == [healthy.name]
            assert fleet.tenant_failures >= 1
            assert round_.merged  # the healthy tenant's round still landed

    def test_reverted_round_returns_harvest_credit(self, fixture):
        """When every gate rejects a round, participants get their fresh
        experience back — the deduped buffer cannot re-admit it, so the
        cursor must roll back for a future round to retrain on it."""
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            db, featurizer, pool = tenants[0]
            tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
            tenant.inject_experience(pool[:6])
            pending_before = tenant.pending_experience()
            # Force unanimous rejection regardless of model quality.
            original = tenant.consider_global
            tenant.consider_global = lambda *_: False
            try:
                round_ = fleet.run_round()
            finally:
                tenant.consider_global = original
            assert round_.reverted
            assert tenant.pending_experience() == pending_before
            # The rejected merge's checkpoint is withdrawn from the
            # lineage along with the in-memory state.
            assert round_.checkpoint_path is None

    def test_zero_verdict_round_is_never_published(self, fixture):
        """If every gate raises (no verdict at all), the merge must not
        land: publishing a state nobody measured would bypass the gate
        safeguard entirely."""
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            db, featurizer, pool = tenants[0]
            tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
            tenant.inject_experience(pool[:6])
            pending_before = tenant.pending_experience()
            before = {k: v.copy() for k, v in fleet.global_state().items()}
            tenant.consider_global = lambda *_: (_ for _ in ()).throw(RuntimeError("gate down"))
            round_ = fleet.run_round()
            assert round_.reverted
            assert tenant.name in round_.failed
            assert round_.checkpoint_path is None
            assert tenant.pending_experience() == pending_before
            after = fleet.global_state()
            for key in before:
                np.testing.assert_array_equal(before[key], after[key])

    def test_background_loop_fires_rounds(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config(min_participants=1)
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            db, featurizer, pool = tenants[0]
            tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
            tenant.inject_experience(pool[:6])
            fleet.start()
            try:
                deadline = threading.Event()
                for _ in range(600):  # up to 30 s
                    if fleet.rounds:
                        break
                    deadline.wait(0.05)
            finally:
                fleet.stop()
            assert fleet.rounds, "background loop never fired a round"
            assert fleet.rounds[0].merged


class TestFleetReport:
    def test_report_merges_tenants(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            nodes = []
            for db, featurizer, pool in tenants[:2]:
                tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
                tenant.inject_experience(pool[:4])
                nodes.append((tenant, pool))
            for tenant, pool in nodes:
                with tenant:
                    for _, item in traffic_stream(pool[:4], occurrences=2, seed=3):
                        tenant.optimize(item)
            fleet.run_round()
            report = fleet.report()
            assert isinstance(report, FleetReport)
            assert report.num_tenants == 2
            assert report.completed == sum(r.completed for r in report.tenants.values())
            assert report.completed == 16
            assert report.rounds == 1

    def test_format_fleet_report_renders(self, fixture):
        tenants, global_state = fixture
        config = tiny_fleet_config()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            for db, featurizer, pool in tenants[:2]:
                tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
                tenant.inject_experience(pool[:5])
            fleet.run_round()
            text = format_fleet_report(fleet.report())
        assert "Federated fleet report" in text
        assert "federated rounds" in text
        assert "global-model gates" in text
        for db, _, _ in tenants[:2]:
            assert f"tenant {db.name!r}" in text

    def test_empty_fleet_report_renders(self):
        text = format_fleet_report(FleetReport())
        assert "tenants" in text and "0" in text


@pytest.mark.threaded
class TestFleetStress:
    def test_concurrent_traffic_with_mid_round_swap(self, fixture):
        """Two tenants under multi-threaded traffic while a federated
        round (fine-tune + gate + hot-swap) runs concurrently: every
        request is answered exactly once with a legal permutation."""
        tenants, global_state = fixture
        config = tiny_fleet_config(fine_tune_epochs=3, regret_tolerance_ms=1e9)
        # One lock-order graph spans every tenant's service mutex,
        # collector mutex and serving model inference lock: a cross-layer
        # inversion introduced anywhere in the fleet fails this test.
        lock_monitor = LockMonitor()
        with FleetCoordinator(TINY, config) as fleet:
            fleet.global_model.load_state_dict(global_state)
            nodes = []
            for db, featurizer, pool in tenants[:2]:
                tenant = fleet.register(make_tenant(db, featurizer, global_state, config))
                instrument_model(tenant.live_model, lock_monitor, name=f"model[{tenant.name}]")
                instrument_service(tenant.service, lock_monitor)
                instrument_collector(tenant.collector, lock_monitor)
                tenant.inject_experience(pool[:6])
                nodes.append((tenant, pool))

            errors: list[BaseException] = []
            responses: dict[tuple, list[str]] = {}
            lock = threading.Lock()

            def client(tenant, pool, worker_index):
                stream = traffic_stream(pool, occurrences=3, seed=worker_index)
                for slot, (index, item) in enumerate(stream):
                    try:
                        order = tenant.optimize(item, timeout=60)
                    except BaseException as error:
                        with lock:
                            errors.append(error)
                        return
                    with lock:
                        responses[(tenant.name, worker_index, slot)] = (index, order)

            threads = []
            for tenant, pool in nodes:
                tenant.start()
                for worker_index in range(4):
                    threads.append(
                        threading.Thread(target=client, args=(tenant, pool, worker_index))
                    )
            for thread in threads:
                thread.start()
            # The round runs while traffic flows: the tolerance forces
            # an accept so the hot-swap genuinely lands mid-traffic.
            round_ = fleet.run_round()
            for thread in threads:
                thread.join()
            for tenant, _ in nodes:
                tenant.stop()

            assert not errors, errors[:3]
            expected = sum(len(pool) * 3 * 4 for _, pool in nodes)
            assert len(responses) == expected
            pools = {tenant.name: pool for tenant, pool in nodes}
            for (tenant_name, _, _), (index, order) in responses.items():
                item = pools[tenant_name][index]
                assert sorted(order) == sorted(item.query.tables)
            assert round_.merged
            assert round_.accepted  # the tolerance guarantees swaps landed
            lock_monitor.assert_clean()  # no inversion across the fleet's locks
