"""Tests for predicates, the query model and the SQL parser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    Conjunction,
    InPredicate,
    LikePredicate,
    Query,
    SQLSyntaxError,
    like_to_regex,
    parse_query,
)
from repro.storage import JoinRelation, Table


@pytest.fixture
def table():
    return Table.from_dict(
        "t",
        {
            "id": [1, 2, 3, 4, 5],
            "score": [0.1, 0.5, 0.9, 0.5, 0.3],
            "name": ["alpha", "beta", "alphabet", "gamma", "beta"],
        },
    )


class TestComparison:
    def test_numeric_ops(self, table):
        assert Comparison("t", "id", CompareOp.LT, 3).evaluate(table).sum() == 2
        assert Comparison("t", "id", CompareOp.GE, 3).evaluate(table).sum() == 3
        assert Comparison("t", "score", CompareOp.EQ, 0.5).evaluate(table).sum() == 2
        assert Comparison("t", "score", CompareOp.NE, 0.5).evaluate(table).sum() == 3

    def test_string_equality(self, table):
        mask = Comparison("t", "name", CompareOp.EQ, "beta").evaluate(table)
        np.testing.assert_array_equal(mask, [False, True, False, False, True])

    def test_str_rendering(self):
        assert str(Comparison("t", "id", CompareOp.LE, 7)) == "t.id <= 7"
        assert str(Comparison("t", "name", CompareOp.EQ, "x")) == "t.name = 'x'"


class TestBetweenIn:
    def test_between_inclusive(self, table):
        mask = BetweenPredicate("t", "id", 2, 4).evaluate(table)
        assert mask.sum() == 3

    def test_in_numeric(self, table):
        mask = InPredicate("t", "id", (1, 5, 99)).evaluate(table)
        assert mask.sum() == 2

    def test_in_string(self, table):
        mask = InPredicate("t", "name", ("beta", "gamma")).evaluate(table)
        assert mask.sum() == 3


class TestLike:
    def test_prefix(self, table):
        mask = LikePredicate("t", "name", "alpha%").evaluate(table)
        assert mask.sum() == 2

    def test_contains(self, table):
        mask = LikePredicate("t", "name", "%et%").evaluate(table)
        np.testing.assert_array_equal(mask, [False, True, True, False, True])

    def test_underscore(self, table):
        mask = LikePredicate("t", "name", "bet_").evaluate(table)
        assert mask.sum() == 2

    def test_negated(self, table):
        like = LikePredicate("t", "name", "alpha%").evaluate(table)
        notlike = LikePredicate("t", "name", "alpha%", negated=True).evaluate(table)
        np.testing.assert_array_equal(like, ~notlike)

    def test_exact_match_no_wildcards(self, table):
        mask = LikePredicate("t", "name", "gamma").evaluate(table)
        assert mask.sum() == 1

    def test_regex_metacharacters_escaped(self):
        regex = like_to_regex("a.b%")
        assert regex.match("a.bXX")
        assert not regex.match("aXbXX")

    @given(st.text(alphabet="ab%_", min_size=0, max_size=8), st.text(alphabet="ab", min_size=0, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_like_matches_reference_implementation(self, pattern, value):
        """LIKE via regex agrees with a simple recursive reference matcher."""

        def ref(p, v):
            if not p:
                return not v
            if p[0] == "%":
                return any(ref(p[1:], v[i:]) for i in range(len(v) + 1))
            if not v:
                return False
            if p[0] == "_" or p[0] == v[0]:
                return ref(p[1:], v[1:])
            return False

        assert (like_to_regex(pattern).match(value) is not None) == ref(pattern, value)


class TestConjunction:
    def test_empty_is_true(self, table):
        conj = Conjunction(table="t", predicates=())
        assert conj.evaluate(table).all()
        assert str(conj) == "TRUE"

    def test_and_semantics(self, table):
        conj = Conjunction(
            table="t",
            predicates=(
                Comparison("t", "id", CompareOp.GT, 1),
                Comparison("t", "score", CompareOp.LE, 0.5),
            ),
        )
        assert conj.evaluate(table).sum() == 3

    def test_cross_table_predicate_rejected(self):
        with pytest.raises(ValueError):
            Conjunction(table="t", predicates=(Comparison("other", "id", CompareOp.EQ, 1),))


class TestQueryModel:
    def _query(self):
        return Query(
            tables=["a", "b", "c"],
            joins=[JoinRelation("a", "bid", "b", "id"), JoinRelation("b", "cid", "c", "id")],
            filters={"a": Conjunction(table="a", predicates=(Comparison("a", "x", CompareOp.GT, 0),))},
        )

    def test_adjacency(self):
        adj = self._query().adjacency_matrix()
        assert adj[0, 1] and adj[1, 2] and not adj[0, 2]
        assert (adj == adj.T).all()

    def test_connectivity(self):
        assert self._query().is_connected()
        disconnected = Query(tables=["a", "b"], joins=[])
        assert not disconnected.is_connected()
        single = Query(tables=["a"])
        assert single.is_connected()

    def test_join_outside_tables_rejected(self):
        with pytest.raises(ValueError):
            Query(tables=["a"], joins=[JoinRelation("a", "x", "zz", "y")])

    def test_filter_on_missing_table_rejected(self):
        with pytest.raises(ValueError):
            Query(tables=["a"], filters={"b": Conjunction(table="b", predicates=())})

    def test_joins_between(self):
        q = self._query()
        between = q.joins_between({"a"}, {"b"})
        assert len(between) == 1
        assert between[0].left == "a"
        reversed_between = q.joins_between({"b"}, {"a"})
        assert reversed_between[0].left == "b"

    def test_to_sql_roundtrip(self):
        q = self._query()
        reparsed = parse_query(q.to_sql())
        assert reparsed.tables == q.tables
        assert reparsed.joins == q.joins
        assert set(reparsed.filters) == set(q.filters)


class TestParser:
    def test_basic_query(self):
        q = parse_query("SELECT COUNT(*) FROM a, b WHERE a.bid = b.id AND a.x > 5")
        assert q.tables == ["a", "b"]
        assert q.joins == [JoinRelation("a", "bid", "b", "id")]
        preds = q.filters["a"].predicates
        assert preds[0] == Comparison("a", "x", CompareOp.GT, 5)

    def test_no_where(self):
        q = parse_query("SELECT COUNT(*) FROM solo;")
        assert q.tables == ["solo"]
        assert not q.joins

    def test_like(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.name LIKE '%ab%'")
        pred = q.filters["t"].predicates[0]
        assert isinstance(pred, LikePredicate)
        assert pred.pattern == "%ab%"

    def test_not_like(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.name NOT LIKE 'x%'")
        assert q.filters["t"].predicates[0].negated

    def test_between(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.v BETWEEN 1 AND 10")
        pred = q.filters["t"].predicates[0]
        assert isinstance(pred, BetweenPredicate)
        assert (pred.low, pred.high) == (1.0, 10.0)

    def test_in_list(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.v IN (1, 2, 3)")
        pred = q.filters["t"].predicates[0]
        assert isinstance(pred, InPredicate)
        assert pred.values == (1, 2, 3)

    def test_string_literal_with_quote(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.name = 'o''brien'")
        assert q.filters["t"].predicates[0].value == "o'brien"

    def test_negative_and_float_literals(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.v > -2.5")
        assert q.filters["t"].predicates[0].value == pytest.approx(-2.5)

    def test_neq_spellings(self):
        for op in ("!=", "<>"):
            q = parse_query(f"SELECT COUNT(*) FROM t WHERE t.v {op} 3")
            assert q.filters["t"].predicates[0].op is CompareOp.NE

    def test_multi_join_query(self):
        q = parse_query(
            "SELECT COUNT(*) FROM a, b, c "
            "WHERE a.bid = b.id AND b.cid = c.id AND c.z LIKE 'k%' AND a.w <= 9"
        )
        assert len(q.joins) == 2
        assert len(q.filters["c"].predicates) == 1
        assert len(q.filters["a"].predicates) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT * FROM t",
            "SELECT COUNT(*) FROM",
            "SELECT COUNT(*) FROM t WHERE",
            "SELECT COUNT(*) FROM t WHERE name = 3",  # unqualified column
            "SELECT COUNT(*) FROM t WHERE t.a < t.b",  # non-equi column pair
            "SELECT COUNT(*) FROM a WHERE a.x = zz.y",  # join to unknown table
            "SELECT COUNT(*) FROM t extra_garbage",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_query(bad)
