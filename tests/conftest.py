"""Shared test configuration.

The threaded serve/adaptation suites coordinate client threads, a drain
thread, a feedback worker and an adaptation worker; a deadlock there
would hang CI until the job-level timeout with no diagnostics.
``pytest-timeout`` is not a baked-in dependency, so the guard is the
stdlib equivalent: tests marked ``threaded`` arm
``faulthandler.dump_traceback_later``, which dumps every thread's stack
and kills the process if a single test exceeds the watchdog budget —
failing fast with the evidence instead of hanging.
"""

import faulthandler
import os
import threading
import traceback

import pytest

# Generous per-test budget: the slowest threaded test (16-client stress
# across a retrain cycle) runs in seconds; only a genuine deadlock or a
# pathologically overloaded runner reaches this.
WATCHDOG_S = float(os.environ.get("REPRO_TEST_WATCHDOG_S", "300"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "threaded: drives background threads; armed with a faulthandler "
        f"watchdog that dumps all stacks and aborts after {WATCHDOG_S:.0f}s "
        "(override via REPRO_TEST_WATCHDOG_S)",
    )


@pytest.fixture(autouse=True)
def _fail_on_thread_exceptions():
    """Fail a test loudly when a background thread dies on an exception.

    ``threading.excepthook`` only prints to stderr by default, so an
    uncaught exception in a worker (drain loop, feedback collector,
    federation harvest thread) would pass the test and surface — maybe —
    as a hang or a missing counter much later.  Every repo worker loop
    is written to survive exceptions; anything reaching the hook is a
    bug by definition.  SystemExit is exempt (the normal way to end a
    thread early).
    """
    failures: list[threading.ExceptHookArgs] = []
    previous = threading.excepthook

    def record(args: threading.ExceptHookArgs) -> None:
        if args.exc_type is SystemExit:
            return
        failures.append(args)
        previous(args)

    threading.excepthook = record
    try:
        yield
    finally:
        threading.excepthook = previous
    if failures:
        rendered = "\n\n".join(
            f"in thread {args.thread.name if args.thread else '?'}:\n"
            + "".join(traceback.format_exception(args.exc_type, args.exc_value, args.exc_traceback))
            for args in failures
        )
        pytest.fail(f"uncaught exception(s) in background thread(s):\n{rendered}")


@pytest.fixture(autouse=True)
def _thread_watchdog(request):
    if request.node.get_closest_marker("threaded") is None:
        yield
        return
    faulthandler.dump_traceback_later(WATCHDOG_S, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
