"""Unit tests for the autograd engine: gradients vs finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn import functional as F


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(make_output, x_data: np.ndarray, atol: float = 1e-5):
    x = Tensor(x_data.copy(), requires_grad=True)
    out = make_output(x)
    out.backward()
    expected = numeric_grad(lambda arr: float(make_output(Tensor(arr)).data), x_data.copy())
    np.testing.assert_allclose(x.grad, expected, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(7)


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda x: (x + 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_mul_backward(self):
        y = RNG.normal(size=(3, 4))
        check_gradient(lambda x: (x * Tensor(y)).sum(), RNG.normal(size=(3, 4)))

    def test_broadcast_add(self):
        b = RNG.normal(size=(4,))
        check_gradient(lambda x: (x + Tensor(b)).sum(), RNG.normal(size=(3, 4)))

    def test_broadcast_grad_flows_to_small_operand(self):
        big = Tensor(RNG.normal(size=(3, 4)))
        small = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (big * small).sum().backward()
        np.testing.assert_allclose(small.grad, big.data.sum(axis=0))

    def test_sub_div_pow(self):
        check_gradient(lambda x: ((x - 1.5) / 2.0).sum(), RNG.normal(size=(5,)))
        check_gradient(lambda x: (x ** 3.0).sum(), RNG.normal(size=(5,)) + 2.0)

    def test_matmul_backward(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_batched(self):
        w = RNG.normal(size=(2, 4, 5))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), RNG.normal(size=(2, 3, 4)))

    def test_matmul_right_grad(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        w = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        (x @ w).sum().backward()
        np.testing.assert_allclose(w.grad, x.data.T @ np.ones((3, 2)))

    def test_getitem_backward(self):
        x = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        x[1:3, :2].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3, :2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_integer_array_accumulates_duplicates(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2.0).sum(), RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_gradient(lambda x: x.mean(), RNG.normal(size=(6, 2)))

    def test_mean_axis_keepdims(self):
        check_gradient(lambda x: (x - x.mean(axis=-1, keepdims=True)).abs().sum(), RNG.normal(size=(3, 4)))

    def test_max_backward_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose(self):
        check_gradient(lambda x: (x.reshape(2, 6).transpose() ** 2.0).sum(), RNG.normal(size=(3, 4)))

    def test_swapaxes(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        y = x.swapaxes(1, 2)
        assert y.shape == (2, 4, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["tanh", "sigmoid", "relu", "exp", "abs"])
    def test_elementwise_grads(self, op):
        data = RNG.normal(size=(4, 3)) + 0.1
        check_gradient(lambda x: getattr(x, op)().sum(), data)

    def test_log_grad(self):
        check_gradient(lambda x: x.log().sum(), RNG.uniform(0.5, 3.0, size=(5,)))

    def test_clip_grad(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(3, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(3), atol=1e-12)

    def test_softmax_grad(self):
        data = RNG.normal(size=(2, 5))
        weights = RNG.normal(size=(2, 5))
        check_gradient(lambda x: (F.softmax(x) * Tensor(weights)).sum(), data)

    def test_log_softmax_grad(self):
        data = RNG.normal(size=(2, 5))
        weights = RNG.normal(size=(2, 5))
        check_gradient(lambda x: (F.log_softmax(x) * Tensor(weights)).sum(), data)

    def test_gelu_grad(self):
        check_gradient(lambda x: F.gelu(x).sum(), RNG.normal(size=(6,)))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_no_grad_context(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            assert not x.requires_grad

    def test_backward_on_nograd_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x.detach() * 2.0
        assert not y.requires_grad

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()
        np.testing.assert_allclose(x.grad, [2 * 6.0 * 1.5])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestFunctionalCombinators:
    def test_concat_grads(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        F.concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_grads(self):
        tensors = [Tensor(RNG.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        F.stack(tensors, axis=0).sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.ones(3))

    def test_where_routes_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        F.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_masked_fill(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([False, True, False, True])
        out = F.masked_fill(x, mask, -99.0)
        np.testing.assert_allclose(out.data, [0.0, -99.0, 2.0, -99.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0, 0.0])

    def test_pad_sequences(self):
        batch, mask = F.pad_sequences([np.ones((2, 3)), np.ones((4, 3))])
        assert batch.shape == (2, 4, 3)
        assert mask[0].tolist() == [False, False, True, True]
        assert mask[1].tolist() == [False, False, False, False]

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestFastPathBitIdentity:
    """The no-tape fast path must be *bit-identical* to the tape path.

    Every dual-mode layer is run twice on the same inputs — once under
    ``nn.force_tape()`` (the pre-fast-path per-op implementation) and
    once on the default no-grad fast path — and the outputs compared
    with exact equality, not allclose: beam search ranks candidates by
    log-prob, and a last-ulp divergence can reorder a beam.
    """

    @staticmethod
    def _fast_vs_tape(module, *args, **kwargs):
        import repro.nn as nn

        module.eval()
        with nn.force_tape(), nn.no_grad():
            tape = module(*args, **kwargs)
        with nn.no_grad():
            fast = module(*args, **kwargs)
        return tape, fast

    def test_linear_layernorm_mlp(self):
        from repro.nn import MLP, LayerNorm, Linear

        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(5, 4, 16)))
        for module in (Linear(16, 16, rng=rng), LayerNorm(16), MLP([16, 32, 16], rng=rng)):
            tape, fast = self._fast_vs_tape(module, x)
            np.testing.assert_array_equal(fast.data, tape.data)

    def test_attention_with_and_without_masks(self):
        from repro.nn import MultiHeadAttention, causal_mask

        rng = np.random.default_rng(4)
        attn = MultiHeadAttention(16, 4, rng=rng)
        q = Tensor(rng.normal(size=(3, 6, 16)))
        padding = rng.random((3, 6)) < 0.3
        for kwargs in (
            {},
            {"attn_mask": causal_mask(6)},
            {"key_padding_mask": padding},
            {"attn_mask": causal_mask(6), "key_padding_mask": padding},
        ):
            tape, fast = self._fast_vs_tape(attn, q, **kwargs)
            np.testing.assert_array_equal(fast.data, tape.data)

    def test_attention_cross_with_cached_kv(self):
        import repro.nn as nn
        from repro.nn import MultiHeadAttention

        rng = np.random.default_rng(5)
        attn = MultiHeadAttention(16, 4, rng=rng)
        attn.eval()
        q = Tensor(rng.normal(size=(2, 3, 16)))
        memory = Tensor(rng.normal(size=(2, 7, 16)))
        with nn.force_tape(), nn.no_grad():
            tape = attn(q, memory, memory)
        with nn.no_grad():
            inline = attn.infer_forward(q.data, memory.data, memory.data)
            kv = attn.infer_project_kv(memory.data)
            cached = attn.infer_forward(q.data, None, None, static_kv=kv)
        np.testing.assert_array_equal(inline, tape.data)
        np.testing.assert_array_equal(cached, tape.data)

    def test_transformer_encoder_and_decoder_blocks(self):
        from repro.nn import TransformerDecoder, TransformerEncoder

        rng = np.random.default_rng(6)
        encoder = TransformerEncoder(16, 4, num_layers=2, rng=rng)
        decoder = TransformerDecoder(16, 4, num_layers=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        memory = Tensor(rng.normal(size=(2, 7, 16)))
        padding = rng.random((2, 7)) < 0.3

        tape, fast = self._fast_vs_tape(encoder, x)
        np.testing.assert_array_equal(fast.data, tape.data)

        tape, fast = self._fast_vs_tape(decoder, x, memory, memory_padding_mask=padding)
        np.testing.assert_array_equal(fast.data, tape.data)

    def test_decoder_with_projected_memory_kv(self):
        import repro.nn as nn
        from repro.nn import TransformerDecoder

        rng = np.random.default_rng(7)
        decoder = TransformerDecoder(16, 4, num_layers=2, rng=rng)
        decoder.eval()
        x = Tensor(rng.normal(size=(2, 5, 16)))
        memory = Tensor(rng.normal(size=(2, 7, 16)))
        with nn.force_tape(), nn.no_grad():
            tape = decoder(x, memory)
        with nn.no_grad():
            kv = decoder.infer_project_memory_kv(memory.data)
            fast = decoder.infer_forward(x.data, None, memory_kv=kv)
        np.testing.assert_array_equal(fast, tape.data)

    def test_lstm(self):
        from repro.nn import LSTM

        rng = np.random.default_rng(8)
        lstm = LSTM(12, 10, rng=rng)
        x = Tensor(rng.normal(size=(3, 6, 12)))
        tape, fast = self._fast_vs_tape(lstm, x)
        np.testing.assert_array_equal(fast.data, tape.data)

    def test_softmax_and_log_softmax_kernels(self):
        import repro.nn as nn
        from repro.nn import kernels

        rng = np.random.default_rng(9)
        for shape in ((7,), (3, 5), (2, 4, 8, 6)):
            x = rng.normal(size=shape) * 10.0
            with nn.force_tape(), nn.no_grad():
                tape_sm = F.softmax(Tensor(x), axis=-1).data
                tape_lsm = F.log_softmax(Tensor(x), axis=-1).data
            with nn.no_grad():
                np.testing.assert_array_equal(kernels.softmax(x, axis=-1), tape_sm)
                np.testing.assert_array_equal(kernels.log_softmax(x, axis=-1), tape_lsm)
                np.testing.assert_array_equal(F.softmax(Tensor(x), axis=-1).data, tape_sm)
                np.testing.assert_array_equal(F.log_softmax(Tensor(x), axis=-1).data, tape_lsm)

    def test_tree_path_encoding_cache_is_bitwise_stable(self):
        from repro.nn.positional import TreePosition, _TREE_PATH_CACHE, tree_path_encoding

        position = TreePosition((0, 1, 1, 0))
        _TREE_PATH_CACHE.clear()
        first = tree_path_encoding(position, 16)
        again = tree_path_encoding(position, 16)
        assert again is first  # memoized, not recomputed
        assert not first.flags.writeable  # consumers cannot corrupt it
        _TREE_PATH_CACHE.clear()
        recomputed = tree_path_encoding(TreePosition((0, 1, 1, 0)), 16)
        np.testing.assert_array_equal(recomputed, first)

    def test_eval_dropout_is_identity_object_both_paths(self):
        import repro.nn as nn
        from repro.nn import Dropout

        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(RNG.normal(size=(4, 4)))
        with nn.force_tape(), nn.no_grad():
            assert drop(x) is x
        with nn.no_grad():
            assert drop(x) is x
