"""The online-adaptation loop: feedback collection, guarded retraining.

Covers the closed loop the ISSUE's tentpole builds: served orders are
executed into experience (``FeedbackCollector`` + ``ExperienceBuffer``),
an ``AdaptationWorker`` warm-starts a trainer from the latest checkpoint,
fine-tunes on the fresh experience, and hot-swaps the serving model only
when the join-order-regret regression gate passes.  The drift scenario
is fixed: the live model is trained on small (2-3 table) queries, then
traffic shifts to 4-6 table queries over a skewed database — exactly
the situation where frozen weights decay and feedback-driven adaptation
pays off.
"""

import dataclasses
import random
import threading

import pytest

from repro.core import JointTrainer, ModelConfig, MTMLFQO
from repro.core.encoders import DatabaseFeaturizer
from repro.core.serializer import query_signature
from repro.datagen import generate_database
from repro.eval import join_order_execution_time, worst_legal_order
from repro.serve import (
    AdaptationConfig,
    AdaptationWorker,
    ExperienceBuffer,
    FeedbackCollector,
    FeedbackConfig,
    OptimizerService,
    ServeConfig,
)
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)

pytestmark = pytest.mark.threaded


@pytest.fixture(scope="module")
def db():
    # Skewed foreign keys: join order genuinely matters, so a model that
    # adapts to the drifted workload shows up in simulated latency.
    return generate_database(
        seed=9, num_tables=6, row_range=(150, 600), attr_range=(2, 3),
        fk_skew=1.3, fk_correlation=0.8,
    )


@pytest.fixture(scope="module")
def featurizer(db):
    feat = DatabaseFeaturizer(db, SMALL)
    feat.train_encoders(queries_per_table=4, epochs=2)
    return feat


@pytest.fixture(scope="module")
def phase1(db):
    """Pre-drift workload: small queries the live model was trained on."""
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=7))
    labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
    items = [i for i in labeler.label_many(generator.generate(24), with_optimal_order=True)
             if i.optimal_order is not None]
    assert len(items) >= 10
    return items[:10]


@pytest.fixture(scope="module")
def phase2(db):
    """Post-drift workload: bigger, LIKE-heavy queries."""
    generator = WorkloadGenerator(
        db,
        WorkloadConfig(min_tables=4, max_tables=6, seed=21,
                       like_probability=0.6, filter_probability=0.8),
    )
    labeler = QueryLabeler(db, max_intermediate_rows=2_000_000)
    items = [i for i in labeler.label_many(generator.generate(30), with_optimal_order=True)
             if i.optimal_order is not None]
    assert len(items) >= 14
    return items[:16]


@pytest.fixture()
def weak_model(db, featurizer, phase1):
    """The pre-drift serving model (knows phase 1, not phase 2)."""
    model = MTMLFQO(SMALL)
    model.attach_featurizer(db.name, featurizer)
    JointTrainer(model).train([(db.name, item) for item in phase1], epochs=4, batch_size=8)
    return model


def fill_buffer(buffer, items):
    for item in items:
        assert buffer.add(query_signature(item.query), item)


class TestExperienceBuffer:
    def _item(self, phase2, index):
        return phase2[index % len(phase2)]

    def test_dedup_by_signature(self, phase2):
        buffer = ExperienceBuffer(capacity=8)
        item = self._item(phase2, 0)
        sig = query_signature(item.query)
        assert buffer.add(sig, item)
        assert not buffer.add(sig, item)
        assert len(buffer) == 1
        assert buffer.added == 1 and buffer.deduped == 1
        assert sig in buffer

    def test_bound_evicts_oldest(self, phase2):
        buffer = ExperienceBuffer(capacity=3)
        for index in range(5):
            item = self._item(phase2, index)
            buffer.add(query_signature(item.query), item)
        assert len(buffer) == 3
        assert buffer.evicted == 2
        assert buffer.added == 5  # monotonic: eviction does not un-count
        snapshot = buffer.snapshot()
        assert [i.query.to_sql() for i in snapshot] == [
            self._item(phase2, index).query.to_sql() for index in (2, 3, 4)
        ]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ExperienceBuffer(capacity=0)


class TestFeedbackCollector:
    def test_served_orders_become_experience(self, db, phase2):
        collector = FeedbackCollector(db, FeedbackConfig(max_intermediate_rows=2_000_000))
        with collector:
            for item in phase2[:4]:
                order = db.join_schema.spanning_join_order(
                    item.query.tables, start=item.query.tables[0]
                )
                assert collector.submit(item, order)
            assert collector.drain(timeout=60)
        assert len(collector.buffer) == 4
        for experience in collector.buffer.snapshot():
            assert experience.extras["source"] == "feedback"
            assert experience.plan.leaf_tables_in_order() == experience.extras["served_order"]
            assert experience.optimal_order is not None  # small queries: ECQO ran
            assert experience.num_nodes == 2 * experience.query.num_tables - 1
        counters = collector.counters()
        assert counters["feedback_collected"] == 4
        assert counters["feedback_rejected"] == 0

    def test_duplicate_submissions_dedup_without_execution(self, db, phase2):
        item = phase2[0]
        order = db.join_schema.spanning_join_order(item.query.tables, start=item.query.tables[0])
        collector = FeedbackCollector(db)
        with collector:
            assert collector.submit(item, order)
            assert collector.drain(timeout=60)
            assert not collector.submit(item, order)  # signature already buffered
        assert collector.counters()["feedback_deduped"] >= 1
        assert len(collector.buffer) == 1

    def test_over_limit_execution_rejected_with_reason(self, db, phase2):
        collector = FeedbackCollector(db, FeedbackConfig(max_intermediate_rows=1))
        item = phase2[0]
        order = db.join_schema.spanning_join_order(item.query.tables, start=item.query.tables[0])
        with collector:
            assert collector.submit(item, order)
            assert collector.drain(timeout=60)
            # A rejected signature is remembered: a hot query whose order
            # is doomed must not re-execute on every request.
            assert not collector.submit(item, order)
            assert collector.drain(timeout=60)
        assert len(collector.buffer) == 0
        assert collector.rejection_reasons() == {"over_limit": 1}  # executed once
        assert collector.counters()["feedback_rejected"] == 1
        assert collector.counters()["feedback_deduped"] >= 1

    def test_stopped_collector_refuses_submissions(self, db, phase2):
        collector = FeedbackCollector(db)
        item = phase2[0]
        assert not collector.submit(item, list(item.query.tables))

    def test_service_feedback_path_collects_cache_hits_too(self, db, weak_model, phase2):
        """attach_feedback wires optimize() -> collector for computed
        responses and cache hits alike; dedup keeps it one experience."""
        collector = FeedbackCollector(db)
        with OptimizerService(weak_model, db.name) as service, collector:
            service.attach_feedback(collector)
            service.optimize(phase2[0])   # computed
            service.optimize(phase2[0])   # cache hit
            assert collector.drain(timeout=60)
            report = service.report()
        assert report.feedback_collected == 1
        assert report.feedback_deduped >= 1


class TestAdaptationWorker:
    CONFIG = AdaptationConfig(min_new_experience=8, fine_tune_epochs=12, batch_size=8)

    def test_cycle_improves_drifted_workload_and_swaps(self, db, weak_model, phase2, tmp_path):
        config = dataclasses.replace(self.CONFIG, checkpoint_dir=str(tmp_path))
        with OptimizerService(weak_model, db.name, ServeConfig(max_batch_size=8)) as service:
            pre = [service.optimize(item) for item in phase2]
            buffer = ExperienceBuffer(64)
            fill_buffer(buffer, phase2)
            worker = AdaptationWorker(service, db, buffer, config)
            swapped = worker.run_once()
            assert swapped, f"gate rejected a genuine improvement: {worker.last_gate}"
            post = [service.optimize(item) for item in phase2]
            report = service.report()

        def total(orders):
            return sum(join_order_execution_time(db, item, order)
                       for item, order in zip(phase2, orders))

        assert total(post) < total(pre)  # adapted weights beat frozen ones
        gate = worker.last_gate
        assert gate.accepted
        assert gate.candidate_ms <= gate.live_ms
        assert report.retrains == 1
        assert report.swaps_accepted == 1 and report.swaps_rejected == 0
        assert report.swaps == 1  # the worker swapped through swap_model

    def test_accepted_cycle_persists_warm_start_checkpoint(self, db, weak_model, phase2, tmp_path):
        import os

        from repro.core.checkpoint import read_checkpoint_meta

        config = dataclasses.replace(self.CONFIG, checkpoint_dir=str(tmp_path))
        with OptimizerService(weak_model, db.name) as service:
            buffer = ExperienceBuffer(64)
            fill_buffer(buffer, phase2)
            worker = AdaptationWorker(service, db, buffer, config)
            assert worker.run_once()
            path = worker._latest_checkpoint
            assert path is not None and os.path.exists(path)
            meta = read_checkpoint_meta(path)
            assert meta["optimizer"] is not None  # Adam moments for the next cycle
            assert db.name in meta["featurizers"]
            # The installed serving model is exactly the checkpointed one.
            served_version = service.session.model.version
            assert meta["model_version"] == served_version

    def test_failed_cycle_preserves_trigger_credit_and_is_counted(
        self, db, weak_model, phase2
    ):
        """A cycle that crashes before a gate verdict (here: unwritable
        checkpoint dir) must not burn the retrain trigger credit, must
        not count as a gate rejection, and must surface as a failure."""
        with OptimizerService(weak_model, db.name) as service:
            buffer = ExperienceBuffer(64)
            fill_buffer(buffer, phase2[:8])
            config = AdaptationConfig(
                min_new_experience=4, fine_tune_epochs=1, poll_interval_s=0.01,
                checkpoint_dir="/proc/unwritable/adaptation-checkpoints",
            )
            worker = AdaptationWorker(service, db, buffer, config)
            with pytest.raises(OSError):
                worker.run_once()
            assert worker.pending_experience() == 8  # credit intact
            with worker:  # the background loop survives the same crash
                deadline, waited = 10.0, 0.0
                while worker.counters()["adaptation_failures"] < 1 and waited < deadline:
                    threading.Event().wait(0.02)
                    waited += 0.02
            counters = worker.counters()
            assert counters["adaptation_failures"] >= 1
            assert counters["swaps_rejected"] == 0  # a crash is not a gate verdict
            assert counters["swaps_accepted"] == 0
            report = service.report()
            assert report.adaptation_failures >= 1

    def test_poisoned_retrain_is_rejected_and_live_model_unchanged(
        self, db, featurizer, phase2, tmp_path
    ):
        """The acceptance criterion's adversarial case: experience whose
        join-order labels are deliberately poisoned (worst sampled legal
        orders) must not reach production — the regression gate blocks
        the swap and the live model keeps serving bit-identical orders."""
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        # A live model that is *good* on the drifted pool: poison must
        # make the candidate measurably worse, not accidentally better.
        JointTrainer(model).train([(db.name, item) for item in phase2], epochs=8, batch_size=8)

        config = dataclasses.replace(self.CONFIG, checkpoint_dir=str(tmp_path))
        with OptimizerService(model, db.name) as service:
            live_model = service.session.model
            pre = [service.optimize(item) for item in phase2]
            buffer = ExperienceBuffer(64)
            for item in phase2:
                poisoned = dataclasses.replace(item, optimal_order=worst_legal_order(db, item))
                buffer.add(query_signature(item.query), poisoned)
            worker = AdaptationWorker(service, db, buffer, config)
            assert not worker.run_once()
            report = service.report()
            assert report.swaps_rejected >= 1
            assert report.swaps_accepted == 0 and report.swaps == 0
            assert service.session.model is live_model  # untouched
            post = [service.optimize(item) for item in phase2]
        assert post == pre  # bit-identical serving throughout
        assert not worker.last_gate.accepted
        assert worker.last_gate.candidate_ms > worker.last_gate.live_ms


class TestFullLoopUnderStress:
    def test_16_clients_across_full_collect_retrain_swap_cycle(
        self, db, weak_model, phase2, tmp_path
    ):
        """16 clients hammer the service while the complete loop —
        collect → retrain → gate → swap — runs live in the background.
        Every request gets exactly one answer; every answer is the
        bit-exact direct result of either the pre-swap or the post-swap
        model; traffic after the swap (including cache hits) is served
        by the new model only."""
        pre_direct = weak_model.predict_join_orders(db.name, phase2)

        serve_config = ServeConfig(max_batch_size=8, max_wait_ms=1.0, plan_cache_size=64)
        # A huge regret tolerance pins the *cycle* deterministically (the
        # swap always happens); the gate's accept/reject behavior itself
        # is pinned by TestAdaptationWorker.
        adapt_config = AdaptationConfig(
            min_new_experience=len(phase2),
            fine_tune_epochs=6,
            batch_size=8,
            regret_tolerance_ms=1e9,
            poll_interval_s=0.05,
            checkpoint_dir=str(tmp_path),
        )
        num_clients, rounds = 16, 30
        answers = [[] for _ in range(num_clients)]
        errors = []
        swap_seen = threading.Event()

        collector = FeedbackCollector(db, FeedbackConfig(buffer_capacity=64))
        service = OptimizerService(weak_model, db.name, serve_config)
        with service, collector:
            service.attach_feedback(collector)
            worker = AdaptationWorker(service, db, collector.buffer, adapt_config)
            with worker:
                def client(slot):
                    rng = random.Random(slot)
                    try:
                        for round_index in range(rounds):
                            index = rng.randrange(len(phase2))
                            answers[slot].append((index, service.optimize(phase2[index])))
                            if worker.counters()["swaps_accepted"] >= 1:
                                swap_seen.set()
                    except BaseException as error:
                        errors.append(error)

                threads = [threading.Thread(target=client, args=(slot,))
                           for slot in range(num_clients)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                # The cycle may still be mid-retrain when traffic ends:
                # wait for it to complete before the post-swap checks.
                deadline = 120
                step = 0.05
                waited = 0.0
                while worker.counters()["swaps_accepted"] < 1 and waited < deadline:
                    threading.Event().wait(step)
                    waited += step
                counters = worker.counters()
                assert counters["swaps_accepted"] >= 1, counters
                final_model = service.session.model
                assert final_model is not weak_model
                final_direct = final_model.predict_join_orders(db.name, phase2)
                post = [service.optimize(item) for item in phase2]
                twice = [service.optimize(item) for item in phase2]  # via cache
                report = service.report()

        assert not errors, errors
        received = sum(len(slot_answers) for slot_answers in answers)
        assert received == num_clients * rounds  # no lost/duplicate responses
        for slot_answers in answers:
            for index, order in slot_answers:
                assert order in (pre_direct[index], final_direct[index])
        # Post-swap traffic — computed *and* cached — is new-model only:
        # no cache entry may ever resurface a pre-swap order.
        assert post == final_direct
        assert twice == final_direct
        assert report.completed == received + 2 * len(phase2)
        assert report.failed == 0 and report.rejected == 0
        assert report.retrains >= 1 and report.swaps_accepted >= 1
        assert report.feedback_collected >= adapt_config.min_new_experience
