"""Full-model checkpoint round trips, integrity, and warm-start training.

The ISSUE's contract: ``save_checkpoint`` → ``load_checkpoint`` is
bit-exact (identical join orders and cardinality/cost predictions),
atomic on disk, carries the model version across the hop, refuses
corrupted/truncated files and mismatched databases, and optionally
restores Adam moments keyed by parameter name for warm-start training.
"""

import os

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    CheckpointError,
    DatabaseFeaturizer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    load_checkpoint,
    load_optimizer_state,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.datagen import generate_database
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

SMALL = ModelConfig(d_model=32, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=6, num_tables=4, row_range=(60, 150), attr_range=(2, 3))


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=7))
    items = QueryLabeler(db).label_many(generator.generate(12), with_optimal_order=True)
    assert len(items) >= 6
    return items


@pytest.fixture(scope="module")
def trained(db, labeled):
    """A trained (featurizer + joint) model plus its trainer."""
    featurizer = DatabaseFeaturizer(db, SMALL)
    featurizer.train_encoders(queries_per_table=3, epochs=1)
    model = MTMLFQO(SMALL)
    model.attach_featurizer(db.name, featurizer)
    trainer = JointTrainer(model)
    trainer.train([(db.name, item) for item in labeled], epochs=2, batch_size=4)
    return model, trainer


class TestRoundTrip:
    def test_bit_exact_predictions(self, db, labeled, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "full"))
        loaded = load_checkpoint(path, databases=db)
        assert loaded.predict_join_orders(db.name, labeled) == model.predict_join_orders(
            db.name, labeled
        )
        for direct, restored in zip(
            model.predict_cardinalities(db.name, labeled),
            loaded.predict_cardinalities(db.name, labeled),
        ):
            np.testing.assert_array_equal(direct, restored)
        for direct, restored in zip(
            model.predict_costs(db.name, labeled),
            loaded.predict_costs(db.name, labeled),
        ):
            np.testing.assert_array_equal(direct, restored)

    @pytest.mark.parametrize("beam_width", [1, 4])
    def test_bit_exact_across_beam_widths(self, db, labeled, trained, tmp_path, beam_width):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "bw"))
        loaded = load_checkpoint(path, databases=db)
        assert loaded.predict_join_orders(
            db.name, labeled, beam_width=beam_width
        ) == model.predict_join_orders(db.name, labeled, beam_width=beam_width)

    def test_clone_for_inference_matches_disk_round_trip(self, db, labeled, trained, tmp_path):
        """``clone_for_inference`` is the in-memory fast path of the same
        guarantee: the state-dict clone, the disk round trip, and the
        source model are all bit-identical (the property the serving
        replica pool rests on)."""
        model, _ = trained
        clone = model.clone_for_inference()
        loaded = load_checkpoint(save_checkpoint(model, str(tmp_path / "clone")), databases=db)
        assert clone.version == loaded.version == model.version
        assert not clone.training  # ready to serve, like a loaded model
        direct = model.predict_join_orders(db.name, labeled)
        assert clone.predict_join_orders(db.name, labeled) == direct
        assert loaded.predict_join_orders(db.name, labeled) == direct
        for from_clone, from_disk in zip(
            clone.predict_cardinalities(db.name, labeled),
            loaded.predict_cardinalities(db.name, labeled),
        ):
            np.testing.assert_array_equal(from_clone, from_disk)
        for from_clone, from_disk in zip(
            clone.predict_costs(db.name, labeled),
            loaded.predict_costs(db.name, labeled),
        ):
            np.testing.assert_array_equal(from_clone, from_disk)

    def test_model_version_and_config_survive(self, db, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "v"))
        loaded = load_checkpoint(path, databases=db)
        assert loaded.version == model.version
        assert loaded.config == model.config
        assert sorted(loaded.featurizers) == sorted(model.featurizers)
        assert not loaded.training  # ready to serve

    def test_save_path_normalized_and_atomic(self, db, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "ckpt"))
        assert path == str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]

    def test_meta_readable_without_loading(self, db, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "meta"))
        meta = read_checkpoint_meta(path)
        assert meta["model_version"] == model.version
        assert meta["config"]["d_model"] == SMALL.d_model
        assert list(meta["featurizers"]) == [db.name]
        assert meta["optimizer"] is None


class TestErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "nope"))

    def test_truncated_file(self, db, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "trunc"))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, databases=db)

    def test_corrupted_payload_fails_integrity(self, db, trained, tmp_path):
        """Bit rot inside an array is caught by the SHA-256 digest."""
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "rot"))
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            original = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([original[0] ^ 0xFF]))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, databases=db)

    def test_not_a_checkpoint(self, db, tmp_path):
        path = str(tmp_path / "plain.npz")
        with open(path, "wb") as handle:
            np.savez(handle, weight=np.zeros(3))
        with pytest.raises(CheckpointError, match="not an MTMLF-QO checkpoint"):
            load_checkpoint(path, databases=db)

    def test_missing_database_named_in_error(self, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "nodb"))
        with pytest.raises(CheckpointError, match="no\\s+Database was provided"):
            load_checkpoint(path)

    def test_wrong_database_schema_rejected(self, trained, tmp_path):
        model, _ = trained
        other = generate_database(seed=99, num_tables=3, row_range=(20, 40), attr_range=(2, 2))
        path = save_checkpoint(model, str(tmp_path / "schema"))
        saved_name = list(model.featurizers)[0]
        with pytest.raises(CheckpointError):
            load_checkpoint(path, databases={saved_name: other})


class TestWarmStart:
    def test_optimizer_state_round_trips(self, db, labeled, trained, tmp_path):
        model, trainer = trained
        path = trainer.save_checkpoint(str(tmp_path / "warm"))
        assert read_checkpoint_meta(path)["optimizer"]["t"] == trainer.optimizer._t
        restored = JointTrainer.warm_start(path, databases=db)
        original = trainer.optimizer.state_dict()
        roundtripped = restored.optimizer.state_dict()
        assert roundtripped["t"] == original["t"]
        assert set(roundtripped["m"]) == set(original["m"])
        for key in original["m"]:
            np.testing.assert_array_equal(roundtripped["m"][key], original["m"][key])
            np.testing.assert_array_equal(roundtripped["v"][key], original["v"][key])

    def test_warm_started_step_matches_original(self, db, labeled, trained, tmp_path):
        """One identical gradient step after restore lands on identical
        weights — the whole point of persisting the moments."""
        model, trainer = trained
        path = trainer.save_checkpoint(str(tmp_path / "step"))
        restored = JointTrainer.warm_start(path, databases=db)
        batch = labeled[:4]
        trainer.model.train()
        restored.model.train()
        loss_a = trainer._step(db.name, batch)
        loss_b = restored._step(db.name, batch)
        assert loss_a == loss_b
        for (name_a, pa), (name_b, pb) in zip(
            trainer.model.named_parameters(), restored.model.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_warm_start_restores_saved_hyperparameters(self, db, labeled, tmp_path):
        """Resuming must continue the saved run's lr/betas, not whatever
        the model config's defaults happen to be."""
        featurizer = DatabaseFeaturizer(db, SMALL)
        model = MTMLFQO(SMALL)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model, learning_rate=5e-4)
        trainer.optimizer.beta1 = 0.85
        path = trainer.save_checkpoint(str(tmp_path / "hyper"))
        restored = JointTrainer.warm_start(path, databases=db)
        assert restored.optimizer.lr == 5e-4
        assert restored.optimizer.beta1 == 0.85
        overridden = JointTrainer.warm_start(path, databases=db, learning_rate=1e-5)
        assert overridden.optimizer.lr == 1e-5  # explicit override wins
        assert overridden.optimizer.beta1 == 0.85

    def test_checkpoint_without_optimizer_refuses_warm_start(self, db, trained, tmp_path):
        model, _ = trained
        path = save_checkpoint(model, str(tmp_path / "cold"))
        optimizer = nn.Adam(model.named_parameters())
        with pytest.raises(CheckpointError, match="no optimizer state"):
            load_optimizer_state(path, optimizer)

    def test_stale_optimizer_state_refused_by_name(self, db, trained, tmp_path):
        """Optimizer state from a differently-shaped parameter set must
        raise, never misalign (the old positional-keying bug)."""
        model, trainer = trained
        path = trainer.save_checkpoint(str(tmp_path / "stale"))
        bigger = MTMLFQO(ModelConfig(d_model=16, num_heads=2, encoder_layers=1,
                                     shared_layers=2, decoder_layers=1))
        optimizer = nn.Adam(bigger.named_parameters())
        with pytest.raises(CheckpointError, match="does not match the current parameter set"):
            load_optimizer_state(path, optimizer)
