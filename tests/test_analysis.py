"""Tests for the concurrency & invariant analyzer (repro.analysis).

Three layers of evidence:

- **meta-tests** — every checker fires on a fixture snippet seeded with
  its violation, and stays silent on the disciplined version of the
  same code (no false positives);
- **escape hatches** — inline suppressions, ``# holds:`` / coarse-lock
  annotations, and the fingerprint baseline behave as documented;
- **runtime layer** — the lock monitor catches a deliberately inverted
  lock pair acquired by real threads (no deadlock required), flags
  over-threshold holds, and instruments the live serving objects.

Plus the enforcement test CI relies on: the real checkers over the real
``src/repro`` tree produce zero findings.
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import Baseline, Linter, LockMonitor, LockOrderError
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.checks import (
    AtomicWriteChecker,
    GradModeChecker,
    GuardedByChecker,
    LockDisciplineChecker,
    ObsDisciplineChecker,
    RawKernelChecker,
    ScratchPrivacyChecker,
    SilentExceptChecker,
    ThreadDisciplineChecker,
    WallClockChecker,
)
from repro.analysis.checks.grad_mode import GradModeScope
from repro.analysis.checks.lock_discipline import EntryLockRule
from repro.analysis.linter import SourceModule

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def run_checker(checker, source: str, rel_path: str = "fixture/mod.py"):
    module = SourceModule(source, rel_path)
    return [f for f in checker.check(module) if not module.suppressed(f)]


# ---------------------------------------------------------------------------
# guarded-by
# ---------------------------------------------------------------------------
class TestGuardedByChecker:
    BAD = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.items = []  # guarded-by: _lock
        self.table = {}  # guarded-by: _lock

    def bump(self):
        self.count += 1

    def push(self):
        self.items.append(1)

    def index(self):
        self.table["k"] = 1

    def wipe(self):
        del self.table
"""

    def test_every_unguarded_mutation_fires(self):
        findings = run_checker(GuardedByChecker(), self.BAD)
        assert len(findings) == 4
        assert {f.symbol for f in findings} == {
            "Box.bump", "Box.push", "Box.index", "Box.wipe",
        }
        assert all(f.checker == "guarded-by" for f in findings)

    def test_clean_class_is_silent(self):
        good = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.items = []  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1
            self.items.append(1)

    def read(self):
        with self._lock:
            return self.count
"""
        assert run_checker(GuardedByChecker(), good) == []

    def test_unguarded_read_fires(self):
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def peek(self):
        return self.count

    def describe(self):
        return f"count={self.count}"
"""
        findings = run_checker(GuardedByChecker(), source)
        assert len(findings) == 2
        assert {f.symbol for f in findings} == {"Box.peek", "Box.describe"}
        assert all("read without holding" in f.message for f in findings)

    def test_mutation_access_is_not_double_reported_as_read(self):
        # `self.items.append(...)` and `self.table[k] = ...` both *load*
        # the guarded attribute on the way to mutating it; each access
        # must produce exactly one (mutation) finding.  The BAD fixture
        # counts of test_every_unguarded_mutation_fires cover the
        # unguarded side; this covers the in-lock side staying silent.
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock
        self.table = {}  # guarded-by: _lock

    def push(self):
        with self._lock:
            self.items.append(1)
            self.table["k"] = len(self.items)
"""
        assert run_checker(GuardedByChecker(), source) == []

    def test_read_respects_locked_suffix_and_holds_comment(self):
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def _peek_locked(self):
        return self.count

    def peek_for_caller(self):  # holds: _lock
        return self.count
"""
        assert run_checker(GuardedByChecker(), source) == []

    def test_condition_alias_counts_as_holding_the_lock(self):
        source = """
import threading

class Q:
    def __init__(self):
        self._mutex = threading.Lock()
        self._nonempty = threading.Condition(self._mutex)
        self.jobs = []  # guarded-by: _mutex

    def put(self, job):
        with self._nonempty:
            self.jobs.append(job)
"""
        assert run_checker(GuardedByChecker(), source) == []

    def test_class_registry_declares_fields(self):
        source = """
import threading

class R:
    _guarded_by_ = {"total": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        self.total += 1
"""
        findings = run_checker(GuardedByChecker(), source)
        assert len(findings) == 1 and findings[0].symbol == "R.bump"

    def test_locked_suffix_and_holds_comment_are_exempt(self):
        source = """
import threading

class S:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def _bump_locked(self):
        self.n += 1

    def bump_for_caller(self):  # holds: _lock
        self.n += 1
"""
        assert run_checker(GuardedByChecker(), source) == []

    def test_init_is_exempt(self):
        source = """
import threading

class T:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock
        self.n = 1  # re-assign during construction: fine
"""
        assert run_checker(GuardedByChecker(), source) == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
class TestLockDisciplineChecker:
    RULES = (EntryLockRule("Model", "_infer_lock", ("predict_a", "predict_b")),)

    def checker(self):
        return LockDisciplineChecker(entry_rules=self.RULES)

    def test_entry_point_without_lock_fires(self):
        source = """
import threading

class Model:
    def __init__(self):
        self._infer_lock = threading.RLock()

    def predict_a(self, x):
        return x + 1
"""
        findings = run_checker(self.checker(), source)
        assert len(findings) == 1 and findings[0].symbol == "Model.predict_a"

    def test_lexical_lock_and_delegation_pass(self):
        source = """
import threading

class Model:
    def __init__(self):
        self._infer_lock = threading.RLock()

    def predict_a(self, x):
        with self._infer_lock:
            return x + 1

    def predict_b(self, x):
        return self.predict_a(x)
"""
        assert run_checker(self.checker(), source) == []

    def test_blocking_calls_under_mutex_fire(self):
        source = """
import threading
import time

class Svc:
    def __init__(self):
        self._mutex = threading.Lock()
        self._worker = None

    def slow(self, model, items):
        with self._mutex:
            time.sleep(0.5)
            self._worker.join()
            model.predict_join_orders(items)
"""
        findings = run_checker(self.checker(), source)
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "time.sleep" in messages
        assert "join()" in messages
        assert "predict_join_orders()" in messages

    def test_foreign_wait_under_mutex_fires_but_condition_wait_passes(self):
        source = """
import threading

class W:
    def __init__(self):
        self._mutex = threading.Lock()
        self._ready = threading.Condition(self._mutex)
        self._event = threading.Event()

    def good(self):
        with self._ready:
            self._ready.wait()

    def bad(self):
        with self._mutex:
            self._event.wait()
"""
        findings = run_checker(self.checker(), source)
        assert len(findings) == 1 and findings[0].symbol == "W.bad"

    def test_coarse_lock_opts_out_of_blocking_rule(self):
        source = """
import threading

class Round:
    def __init__(self):
        self._round_lock = threading.Lock()  # analysis: coarse-lock

    def run(self, model, items):
        with self._round_lock:
            model.predict_join_orders(items)
"""
        assert run_checker(self.checker(), source) == []


# ---------------------------------------------------------------------------
# grad-mode
# ---------------------------------------------------------------------------
class TestGradModeChecker:
    SCOPES = (GradModeScope("*serve/*.py", "*"),)

    def test_forward_call_outside_no_grad_fires(self):
        source = """
def serve(model, batch):
    return model.forward_batch("db", batch)
"""
        findings = run_checker(
            GradModeChecker(scopes=self.SCOPES), source, "pkg/serve/loop.py"
        )
        assert len(findings) == 1 and "forward_batch" in findings[0].message

    def test_no_grad_wrapped_call_passes(self):
        source = """
from repro import nn

def serve(model, batch):
    with nn.no_grad():
        return model.forward_batch("db", batch)
"""
        assert run_checker(
            GradModeChecker(scopes=self.SCOPES), source, "pkg/serve/loop.py"
        ) == []

    def test_out_of_scope_file_is_ignored(self):
        source = """
def train(model, batch):
    return model.forward_batch("db", batch)  # the trainer needs the tape
"""
        assert run_checker(
            GradModeChecker(scopes=self.SCOPES), source, "pkg/core/trainer.py"
        ) == []


# ---------------------------------------------------------------------------
# raw-kernel (dual-mode substrate invariant)
# ---------------------------------------------------------------------------
class TestRawKernelChecker:
    def test_unguarded_kernel_and_infer_calls_fire(self):
        source = """
from repro.nn import kernels

def forward(model, x):
    h = kernels.linear(x, model.w, model.b)
    return model.infer_forward(h)
"""
        findings = run_checker(RawKernelChecker(), source)
        assert len(findings) == 2
        assert "kernels.linear" in findings[0].message
        assert "infer_forward" in findings[1].message

    def test_no_grad_block_guards(self):
        source = """
from repro import nn
from repro.nn import kernels

def forward(model, x):
    with nn.no_grad():
        return kernels.linear(x, model.w, model.b)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_no_tape_active_branch_guards(self):
        source = """
from repro import nn
from repro.nn import kernels

def forward(model, x):
    if nn.no_tape_active():
        return kernels.relu(x)
    return model.slow(x)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_not_grad_enabled_and_else_of_grad_enabled_guard(self):
        source = """
from repro import nn
from repro.nn import kernels

def a(x):
    if not nn.is_grad_enabled():
        return kernels.softmax(x)
    return x

def b(model, x):
    if nn.is_grad_enabled():
        return model.slow(x)
    else:
        return model.infer_forward(x)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_and_conjunction_guards(self):
        source = """
from repro import nn
from repro.nn import kernels

def forward(model, x, fast):
    if fast and nn.no_tape_active():
        return kernels.relu(x)
    return model.slow(x)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_infer_function_is_itself_an_entry_point(self):
        # An infer_* function may call raw kernels freely — its callers
        # carry the guard obligation (checked at their call sites).
        source = """
from repro.nn import kernels

class Layer:
    def infer_forward(self, x):
        def project(v):
            return kernels.matmul(v, self.w)
        return project(x)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_nested_helper_under_guard_inherits_it(self):
        source = """
from repro import nn
from repro.nn import kernels

def forward(model, x):
    if nn.no_tape_active():
        def step(v):
            return kernels.layer_norm(v, model.g, model.b)
        return step(x)
    return model.slow(x)
"""
        assert run_checker(RawKernelChecker(), source) == []

    def test_unrelated_branch_does_not_guard(self):
        source = """
from repro.nn import kernels

def forward(model, x, fast):
    if fast:
        return kernels.relu(x)
    return model.slow(x)
"""
        findings = run_checker(RawKernelChecker(), source)
        assert len(findings) == 1 and "kernels.relu" in findings[0].message

    def test_kernels_module_itself_is_exempt(self):
        source = """
def linear(x, w, b):
    return matmul(x, w) + b

def fused(x, w, b):
    return kernels.relu(linear(x, w, b))
"""
        assert run_checker(RawKernelChecker(), source, "repro/nn/kernels.py") == []


# ---------------------------------------------------------------------------
# hygiene checkers
# ---------------------------------------------------------------------------
class TestHygieneCheckers:
    def test_raw_savez_fires_and_serializer_module_is_exempt(self):
        source = """
import numpy as np

def dump(path, arrays):
    np.savez(path, **arrays)
"""
        assert len(run_checker(AtomicWriteChecker(), source, "pkg/core/io.py")) == 1
        assert run_checker(AtomicWriteChecker(), source, "pkg/nn/serialize.py") == []

    def test_thread_without_explicit_daemon_fires(self):
        bad = """
import threading

def go():
    threading.Thread(target=print).start()
"""
        good = """
import threading

def go():
    threading.Thread(target=print, daemon=True).start()
"""
        assert len(run_checker(ThreadDisciplineChecker(), bad)) == 1
        assert run_checker(ThreadDisciplineChecker(), good) == []

    def test_silent_except_fires_and_handled_except_passes(self):
        bad = """
def f():
    try:
        g()
    except Exception:
        pass
"""
        good = """
def f(log):
    try:
        g()
    except Exception as error:
        log.append(error)
"""
        assert len(run_checker(SilentExceptChecker(), bad)) == 1
        assert run_checker(SilentExceptChecker(), good) == []

    def test_wall_clock_fires_and_monotonic_passes(self):
        bad = """
import time

def span():
    return time.time()
"""
        good = """
import time

def span():
    return time.monotonic() or time.perf_counter()
"""
        assert len(run_checker(WallClockChecker(), bad)) == 1
        assert run_checker(WallClockChecker(), good) == []

    def test_module_and_class_scoped_scratch_fire(self):
        bad = """
from repro import nn

ARENA = nn.ScratchArena()

class Decoder:
    cache = nn.KVCache(None)
"""
        findings = run_checker(ScratchPrivacyChecker(), bad)
        assert len(findings) == 2
        assert "<module>" in findings[0].message and "ScratchArena" in findings[0].message
        assert "class Decoder" in findings[1].message and "KVCache" in findings[1].message

    def test_owner_scoped_scratch_passes(self):
        good = """
from repro import nn

class Session:
    def __init__(self):
        self.scratch = nn.ScratchArena()

def decode(memory):
    cache = nn.KVCache(memory)
    return cache
"""
        assert run_checker(ScratchPrivacyChecker(), good) == []


# ---------------------------------------------------------------------------
# obs-discipline
# ---------------------------------------------------------------------------
class TestObsDisciplineChecker:
    def test_imperative_span_api_fires_outside_obs(self):
        bad = """
def serve(tracer, tid):
    span = tracer.start_span(tid, "decode")
    result = work()
    tracer.end_span(span)
    return result
"""
        findings = run_checker(ObsDisciplineChecker(), bad)
        assert len(findings) == 2
        assert "start_span" in findings[0].message
        assert "with tracer.span" in findings[0].message

    def test_imperative_span_api_allowed_inside_obs(self):
        source = """
def serve(tracer, tid):
    span = tracer.start_span(tid, "decode")
    tracer.end_span(span)
"""
        assert run_checker(
            ObsDisciplineChecker(), source, rel_path="src/repro/obs/trace.py"
        ) == []

    def test_context_manager_span_passes(self):
        good = """
def serve(tracer, tid):
    with tracer.span(tid, "decode") as span:
        span.set("queries", 3)
        return work()
"""
        assert run_checker(ObsDisciplineChecker(), good) == []

    def test_recording_under_own_lock_fires(self):
        bad = """
import threading

class Service:
    def __init__(self, telemetry):
        self._mutex = threading.Lock()
        self.telemetry = telemetry
        self.completed = None

    def done(self, latency):
        with self._mutex:
            self.completed.inc()
            self.latency.observe(latency)
            self.batch.update_max(4)
            self.telemetry.slo.record("tenant", latency)
"""
        findings = run_checker(ObsDisciplineChecker(), bad)
        assert len(findings) == 4
        assert all(f.checker == "obs-discipline" for f in findings)
        assert all("self._mutex" in f.message for f in findings)
        assert {f.symbol for f in findings} == {"Service.done"}

    def test_recording_after_lock_release_passes(self):
        good = """
import threading

class Service:
    def __init__(self):
        self._mutex = threading.Lock()
        self.count = 0  # guarded-by: _mutex

    def done(self, latency):
        with self._mutex:
            self.count += 1
        self.completed.inc()
        self.latency.observe(latency)
"""
        assert run_checker(ObsDisciplineChecker(), good) == []

    def test_generic_record_and_set_do_not_fire(self):
        # .record on a non-telemetry receiver and .set on anything are
        # too generic to match; only slo/tracer record sites count.
        good = """
import threading

class Recorder:
    def __init__(self):
        self._lock = threading.Lock()

    def note(self, value):
        with self._lock:
            self.journal.record(value)
            self.flags.set(value)
"""
        assert run_checker(ObsDisciplineChecker(), good) == []

    def test_suppression_silences(self):
        source = """
import threading

class Service:
    def __init__(self):
        self._mutex = threading.Lock()

    def done(self):
        with self._mutex:
            self.completed.inc()  # analysis: ignore[obs-discipline]
"""
        assert run_checker(ObsDisciplineChecker(), source) == []


# ---------------------------------------------------------------------------
# suppressions, fingerprints, baseline
# ---------------------------------------------------------------------------
class TestEscapeHatches:
    BAD_LINE = """
import time

def span():
    return time.time()  # analysis: ignore[wall-clock] — epoch stamp, not latency
"""

    def test_inline_suppression_silences_named_checker(self):
        assert run_checker(WallClockChecker(), self.BAD_LINE) == []

    def test_bare_suppression_silences_everything(self):
        source = self.BAD_LINE.replace("ignore[wall-clock]", "ignore")
        assert run_checker(WallClockChecker(), source) == []

    def test_suppression_for_other_checker_does_not_silence(self):
        source = self.BAD_LINE.replace("wall-clock", "guarded-by")
        assert len(run_checker(WallClockChecker(), source)) == 1

    def test_fingerprint_is_stable_across_line_drift(self):
        source = "import time\n\ndef span():\n    return time.time()\n"
        shifted = "import time\n\n\n\n\ndef span():\n    return time.time()\n"
        (a,) = run_checker(WallClockChecker(), source)
        (b,) = run_checker(WallClockChecker(), shifted)
        assert a.line != b.line and a.fingerprint == b.fingerprint

    def test_baseline_matches_and_reports_stale_entries(self):
        (finding,) = run_checker(WallClockChecker(), "import time\n\ndef f():\n    return time.time()\n")
        baseline = Baseline({finding.fingerprint, "wall-clock:gone.py:f:deadbeef0000"})
        assert baseline.contains(finding)
        assert baseline.unused == {"wall-clock:gone.py:f:deadbeef0000"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCLI:
    BAD_FILE = "import time\n\ndef f():\n    return time.time()\n"

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("import time\n\ndef f():\n    return time.monotonic()\n")
        assert analysis_main([str(tmp_path), "--no-baseline", "--fail-on-findings"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_fail_only_with_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD_FILE)
        assert analysis_main([str(tmp_path), "--no-baseline"]) == 0
        assert analysis_main([str(tmp_path), "--no-baseline", "--fail-on-findings"]) == 1
        assert "[wall-clock]" in capsys.readouterr().out

    def test_write_baseline_then_clean_then_stale(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD_FILE)
        baseline = tmp_path / "baseline.txt"
        assert analysis_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        # Baselined: the finding no longer fails CI.
        assert analysis_main(
            [str(tmp_path), "--baseline", str(baseline), "--fail-on-findings"]
        ) == 0
        # Fixing the violation makes the baseline entry stale — exit 2.
        (tmp_path / "bad.py").write_text("def f():\n    return 0\n")
        assert analysis_main(
            [str(tmp_path), "--baseline", str(baseline), "--fail-on-findings"]
        ) == 2
        assert "stale" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD_FILE)
        assert analysis_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["checker"] == "wall-clock" and finding["fingerprint"]

    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert analysis_main([str(tmp_path), "--no-baseline", "--fail-on-findings"]) == 1


# ---------------------------------------------------------------------------
# the enforcement test: the real tree is clean
# ---------------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_repro_has_zero_findings(self):
        findings = Linter().run_paths([SRC_ROOT], root=SRC_ROOT.parent.parent)
        assert findings == [], "\n" + "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# runtime lock monitor
# ---------------------------------------------------------------------------
@pytest.mark.threaded
class TestLockMonitor:
    def test_inverted_pair_across_threads_is_caught_without_deadlock(self):
        """Thread 1 takes A→B, thread 2 takes B→A — sequenced so no
        deadlock ever occurs, yet the cycle is detected."""
        monitor = LockMonitor()
        lock_a = monitor.lock("A")
        lock_b = monitor.lock("B")
        first_done = threading.Event()

        def one():
            with lock_a:
                with lock_b:
                    pass
            first_done.set()

        def two():
            first_done.wait(5.0)
            with lock_b:
                with lock_a:
                    pass

        threads = [threading.Thread(target=one), threading.Thread(target=two)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with pytest.raises(LockOrderError, match="lock-order inversion"):
            monitor.check()

    def test_consistent_order_is_clean(self):
        monitor = LockMonitor()
        lock_a = monitor.lock("A")
        lock_b = monitor.lock("B")

        def worker():
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        monitor.assert_clean()
        assert monitor.edges() == {"A": {"B"}}

    def test_raise_on_cycle_raises_in_the_acquiring_thread(self):
        monitor = LockMonitor(raise_on_cycle=True)
        lock_a = monitor.lock("A")
        lock_b = monitor.lock("B")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with pytest.raises(LockOrderError):
                lock_a.acquire()
        # The failed acquire backed itself out: the lock is free.
        assert lock_a.acquire(timeout=1.0)
        lock_a.release()

    def test_long_hold_is_flagged(self):
        monitor = LockMonitor(max_hold_s=0.01)
        lock = monitor.lock("slow")
        with lock:
            time.sleep(0.05)
        violations = monitor.check()
        assert len(violations) == 1
        assert violations[0].kind == "hold" and violations[0].lock == "slow"
        with pytest.raises(AssertionError, match="lock timing"):
            monitor.assert_clean()

    def test_reentrant_rlock_records_no_self_edge(self):
        monitor = LockMonitor()
        lock = monitor.rlock("R")
        with lock:
            with lock:
                pass
        monitor.assert_clean()
        assert monitor.edges() == {}

    def test_condition_over_traced_lock_keeps_held_set_accurate(self):
        """Condition.wait releases the traced lock; an acquisition during
        the wait must not record a (held → acquired) edge."""
        monitor = LockMonitor()
        traced = monitor.lock("cond-lock")
        other = monitor.lock("other")
        condition = threading.Condition(traced)
        started = threading.Event()

        def waiter():
            with condition:
                started.set()
                condition.wait(5.0)

        def pinger():
            started.wait(5.0)
            # While the waiter sleeps it must NOT count as holding the
            # traced lock on *this* thread either.
            with other:
                pass
            with condition:
                condition.notify_all()

        threads = [threading.Thread(target=waiter), threading.Thread(target=pinger)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        monitor.assert_clean()
        assert monitor.edges() == {}
