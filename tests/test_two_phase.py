"""Tests for the two-phase JoinSel training extension (Section 3.2).

The paper's research note: optimal join orders are expensive, so an
existing DBMS can generate sub-optimal orders to pre-train a baseline
model, refined later with the scarce optimal orders.  The weak label is
the initial plan's join order (``planner_order_positions``).
"""

import numpy as np
import pytest

from repro.core import DatabaseFeaturizer, JointTrainer, ModelConfig, MTMLFQO, joeu
from repro.core.trainer import order_positions, planner_order_positions
from repro.datagen import generate_database
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

TINY = ModelConfig(d_model=16, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1,
                   w_card=0.0, w_cost=0.0, w_jo=1.0)


@pytest.fixture(scope="module")
def setup():
    db = generate_database(seed=4, num_tables=6, row_range=(60, 250), attr_range=(2, 3))
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=1))
    labeled = QueryLabeler(db).label_many(generator.generate(30), with_optimal_order=True)
    featurizer = DatabaseFeaturizer(db, TINY)
    featurizer.train_encoders(queries_per_table=3, epochs=1)
    return db, labeled, featurizer


class TestWeakLabels:
    def test_planner_order_positions_valid(self, setup):
        db, labeled, _ = setup
        for item in labeled:
            positions = planner_order_positions(item)
            if positions is None:
                continue
            assert sorted(positions) == list(range(item.query.num_tables))
            tables = [item.query.tables[p] for p in positions]
            assert tables == item.plan.leaf_tables_in_order()

    def test_weak_and_strong_labels_may_differ(self, setup):
        db, labeled, _ = setup
        jo_items = [i for i in labeled if i.optimal_order is not None]
        weak = [planner_order_positions(i) for i in jo_items]
        strong = [order_positions(i) for i in jo_items]
        # Not asserting inequality (the planner may be right); the point
        # is both labelings exist for the same items.
        assert len(weak) == len(strong) > 0


class TestTwoPhaseTraining:
    def test_planner_phase_trains(self, setup):
        db, labeled, featurizer = setup
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        trainer.jo_label_source = "planner"
        result = trainer.train([(db.name, item) for item in labeled], epochs=3, batch_size=8)
        assert np.isfinite(result.final_loss)
        assert result.epoch_losses[-1] <= result.epoch_losses[0]

    def test_two_phase_pipeline(self, setup):
        """Phase 1 on planner orders, phase 2 on optimal orders."""
        db, labeled, featurizer = setup
        jo_items = [i for i in labeled if i.optimal_order is not None]
        model = MTMLFQO(TINY)
        model.attach_featurizer(db.name, featurizer)
        trainer = JointTrainer(model)
        examples = [(db.name, item) for item in labeled]

        trainer.jo_label_source = "planner"
        trainer.train(examples, epochs=3, batch_size=8, seed=0)
        trainer.jo_label_source = "optimal"
        result = trainer.train(examples, epochs=3, batch_size=8, seed=1)
        assert np.isfinite(result.final_loss)

        scores = [
            joeu(model.predict_join_order(db.name, item), item.optimal_order)
            for item in jo_items
        ]
        assert all(0.0 <= s <= 1.0 for s in scores)
