"""Tests for workload generation, labeling and dataset splitting."""

import numpy as np
import pytest

from repro.datagen import generate_database
from repro.engine import execute_plan
from repro.sql import LikePredicate, Query
from repro.workload import (
    QueryDataset,
    QueryLabeler,
    WorkloadConfig,
    WorkloadGenerator,
    generate_single_table_queries,
    split_dataset,
)


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=3, num_tables=6, row_range=(80, 400), attr_range=(2, 4))


@pytest.fixture(scope="module")
def generator(db):
    return WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=0))


class TestGenerator:
    def test_queries_are_connected(self, generator):
        for query in generator.generate(30):
            assert query.is_connected(), query.to_sql()

    def test_query_table_counts_in_range(self, generator):
        for query in generator.generate(30):
            assert 2 <= query.num_tables <= 4

    def test_joins_match_schema(self, db, generator):
        for query in generator.generate(20):
            for join in query.joins:
                assert db.join_schema.are_joinable(join.left, join.right)

    def test_filters_never_touch_key_columns(self, db, generator):
        for query in generator.generate(30):
            for table, conj in query.filters.items():
                pk = db.table(table).primary_key
                for predicate in conj.predicates:
                    assert predicate.column_names()[0] != pk
                    assert not predicate.column_names()[0].startswith("fk_")

    def test_queries_executable(self, db, generator):
        from repro.engine import left_deep_plan
        for query in generator.generate(10):
            order = db.join_schema.spanning_join_order(query.tables, start=query.tables[0])
            plan = left_deep_plan(query, order)
            result = execute_plan(plan, db)
            assert result.cardinality >= 0

    def test_determinism(self, db):
        a = WorkloadGenerator(db, WorkloadConfig(seed=42, max_tables=3)).generate(5)
        b = WorkloadGenerator(db, WorkloadConfig(seed=42, max_tables=3)).generate(5)
        assert [q.to_sql() for q in a] == [q.to_sql() for q in b]

    def test_like_predicates_appear(self, db):
        config = WorkloadConfig(seed=1, min_tables=1, max_tables=2, like_probability=0.9, filter_probability=1.0)
        generator = WorkloadGenerator(db, config)
        queries = generator.generate(50)
        likes = [
            p
            for q in queries
            for conj in q.filters.values()
            for p in conj.predicates
            if isinstance(p, LikePredicate)
        ]
        # string columns may be rare in a given schema; require at least some
        string_columns = any(db.table(t).string_columns() for t in db.table_names)
        if string_columns:
            assert likes

    def test_single_table_queries(self, db):
        table = db.table_names[0]
        queries = generate_single_table_queries(db, table, 10, seed=0)
        assert len(queries) == 10
        for query in queries:
            assert query.tables == [table]
            assert not query.joins


class TestLabeler:
    @pytest.fixture(scope="class")
    def labeled(self, db, generator):
        labeler = QueryLabeler(db)
        return labeler.label_many(generator.generate(15), with_optimal_order=True)

    def test_labels_present(self, labeled):
        assert labeled, "labeling dropped every query"
        for item in labeled:
            assert item.num_nodes == 2 * item.query.num_tables - 1
            assert all(c >= 0 for c in item.node_cardinalities)
            assert all(c >= 0 for c in item.node_costs)

    def test_root_labels_match_properties(self, labeled):
        for item in labeled:
            assert item.cardinality == item.node_cardinalities[0]
            assert item.cost == item.node_costs[0]

    def test_root_cost_is_total(self, labeled):
        """The root subtree cost equals the whole plan latency."""
        for item in labeled:
            assert item.cost == pytest.approx(item.total_time_ms, rel=1e-9)

    def test_costs_decrease_down_the_tree(self, labeled):
        """A subtree's cost must be >= each of its children's costs."""
        for item in labeled:
            order = item.plan.nodes_preorder()
            cost_of = {id(n): c for n, c in zip(order, item.node_costs)}
            for node in order:
                for child in node.children():
                    assert cost_of[id(node)] >= cost_of[id(child)] - 1e-9

    def test_optimal_order_legal(self, labeled, db):
        found = False
        for item in labeled:
            if item.optimal_order is None:
                continue
            found = True
            joined = {item.optimal_order[0]}
            for table in item.optimal_order[1:]:
                assert item.query.joins_between(joined, {table})
                joined.add(table)
            assert sorted(item.optimal_order) == sorted(item.query.tables)
        assert found, "no query got an optimal-order label"

    def test_card_label_matches_reexecution(self, labeled, db):
        item = labeled[0]
        result = execute_plan(item.plan, db)
        assert result.node_cardinalities == item.node_cardinalities


class TestLabelerSkipReasons:
    """The labeler only drops queries for the two understood reasons,
    records why, and propagates everything else (the old blanket
    ``except ValueError`` silently ate planner bugs as "over limit")."""

    def test_over_limit_recorded(self, db, generator):
        labeler = QueryLabeler(db, max_intermediate_rows=1)
        queries = generator.generate(8)
        skipped = [q for q in queries if labeler.label(q) is None]
        assert skipped, "row cap of 1 skipped nothing"
        assert labeler.last_skip_reason == "over_limit"
        assert labeler.skip_counts["over_limit"] == len(skipped)

    def test_disconnected_recorded(self, db):
        disconnected = Query(tables=list(db.table_names[:2]), joins=[], filters={})
        labeler = QueryLabeler(db)
        assert labeler.label(disconnected) is None
        assert labeler.last_skip_reason == "disconnected"
        assert labeler.skip_counts == {"disconnected": 1}

    def test_planner_bug_propagates(self, db, generator, monkeypatch):
        labeler = QueryLabeler(db)
        monkeypatch.setattr(
            labeler.planner, "plan", lambda query: (_ for _ in ()).throw(ValueError("planner bug"))
        )
        with pytest.raises(ValueError, match="planner bug"):
            labeler.label(generator.generate_query())
        assert labeler.skip_counts == {}

    def test_skip_reason_resets_on_success(self, db, generator):
        labeler = QueryLabeler(db, max_intermediate_rows=1)
        query = generator.generate_query()
        assert labeler.label(query) is None
        labeler.max_intermediate_rows = None
        assert labeler.label(query) is not None
        assert labeler.last_skip_reason is None

    def test_optimal_order_skip_lands_in_extras(self, db, generator, monkeypatch):
        from repro.engine import ExecutionLimitError
        import repro.workload.labeler as labeler_module

        labeler = QueryLabeler(db)
        monkeypatch.setattr(
            labeler_module,
            "optimal_join_order",
            lambda *args, **kwargs: (_ for _ in ()).throw(ExecutionLimitError("oracle blew the cap")),
        )
        item = labeler.label(generator.generate_query(), with_optimal_order=True)
        assert item is not None
        assert item.optimal_order is None
        assert item.extras["optimal_order_skip"] == "over_limit"
        assert "oracle blew the cap" in item.extras["optimal_order_skip_detail"]

    def test_label_with_order_executes_served_order(self, db, generator):
        labeler = QueryLabeler(db)
        for query in generator.generate(10):
            base = labeler.label(query, with_optimal_order=False)
            if base is None:
                continue
            order = db.join_schema.spanning_join_order(query.tables, start=query.tables[0])
            item = labeler.label_with_order(query, order, with_optimal_order=False)
            assert item is not None
            assert item.plan.leaf_tables_in_order() == order
            assert item.extras["served_order"] == order
            assert item.num_nodes == 2 * query.num_tables - 1
            result = execute_plan(item.plan, db)
            assert result.node_cardinalities == item.node_cardinalities
            return
        pytest.fail("no labelable query found")

    def test_label_with_order_disconnected_skips_with_reason(self, db):
        labeler = QueryLabeler(db)
        disconnected = Query(tables=list(db.table_names[:2]), joins=[], filters={})
        assert labeler.label_with_order(disconnected, list(disconnected.tables)) is None
        assert labeler.last_skip_reason == "disconnected"

    def test_label_with_order_rejects_illegal_order(self, db, generator):
        labeler = QueryLabeler(db)
        for query in generator.generate(10):
            if query.num_tables < 3:
                continue
            order = db.join_schema.spanning_join_order(query.tables, start=query.tables[0])
            illegal = list(reversed(order))
            if query.joins_between({illegal[0]}, {illegal[1]}):
                continue  # reversal happens to stay legal; try another
            with pytest.raises(ValueError, match="illegal join order"):
                labeler.label_with_order(query, illegal)
            return
        pytest.skip("no query with an illegal reversal found")


class TestDataset:
    def _dataset(self, n=20):
        from repro.workload.labeler import LabeledQuery
        from repro.engine import scan_node

        items = []
        for i in range(n):
            q = Query(tables=["t"], joins=[], filters={})
            items.append(
                LabeledQuery(
                    query=q,
                    plan=scan_node("t"),
                    node_cardinalities=[i],
                    node_costs=[float(i)],
                    total_time_ms=float(i),
                    optimal_order=["t"] if i % 2 == 0 else None,
                )
            )
        return QueryDataset(items)

    def test_split_sizes(self):
        ds = self._dataset(20)
        train, val = split_dataset(ds, (0.8, 0.2), seed=0)
        assert len(train) == 16 and len(val) == 4

    def test_split_three_way(self):
        ds = self._dataset(20)
        a, b, c = split_dataset(ds, (0.85, 0.1, 0.05), seed=0)
        assert len(a) + len(b) + len(c) == 20

    def test_split_disjoint(self):
        ds = self._dataset(10)
        a, b = split_dataset(ds, (0.5, 0.5), seed=1)
        ids_a = {id(x) for x in a}
        ids_b = {id(x) for x in b}
        assert not (ids_a & ids_b)

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            split_dataset(self._dataset(4), (0.5, 0.2))

    def test_with_optimal_order(self):
        ds = self._dataset(10)
        assert len(ds.with_optimal_order()) == 5

    def test_batches_cover_everything(self):
        ds = self._dataset(10)
        seen = []
        for batch in ds.batches(3, rng=np.random.default_rng(0)):
            seen.extend(batch)
        assert len(seen) == 10

    def test_indexing(self):
        ds = self._dataset(5)
        assert ds[0].node_cardinalities == [0]
        assert len(ds[1:3]) == 2
