"""Tests for JOEU and the legality-aware beam search (Sections 4.3, 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.core import (
    BeamCandidate,
    ModelConfig,
    TransJO,
    beam_search_join_order,
    is_legal_order,
    joeu,
    shared_prefix_length,
)


class TestJOEU:
    def test_identical_orders(self):
        assert joeu(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_no_shared_prefix(self):
        assert joeu(["b", "a"], ["a", "b"]) == 0.0

    def test_partial_prefix(self):
        assert joeu(["a", "b", "x", "y"], ["a", "b", "c", "d"]) == pytest.approx(0.5)

    def test_mismatch_middle_ignores_suffix(self):
        # A matching suffix after a mismatch must not count.
        assert joeu(["a", "x", "c"], ["a", "b", "c"]) == pytest.approx(1 / 3)

    def test_empty(self):
        assert joeu([], []) == 1.0

    def test_different_lengths(self):
        assert joeu(["a"], ["a", "b"]) == pytest.approx(0.5)

    def test_prefix_length(self):
        assert shared_prefix_length([1, 2, 3], [1, 2, 4]) == 2

    @given(st.lists(st.integers(0, 5), max_size=8), st.lists(st.integers(0, 5), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_joeu_in_unit_interval(self, u, v):
        value = joeu(u, v)
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=8, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_joeu_reflexive(self, u):
        assert joeu(u, u) == 1.0

    @given(st.lists(st.integers(0, 9), min_size=2, max_size=8, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_joeu_monotone_in_prefix(self, u):
        """Breaking the order earlier can only lower JOEU."""
        u_star = list(u)
        scores = []
        for break_at in range(len(u)):
            candidate = list(u_star)
            candidate[break_at] = 999  # value outside the domain
            scores.append(joeu(candidate, u_star))
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))


def chain_adjacency(m: int) -> np.ndarray:
    adj = np.zeros((m, m), dtype=bool)
    for i in range(m - 1):
        adj[i, i + 1] = adj[i + 1, i] = True
    return adj


def star_adjacency(m: int) -> np.ndarray:
    adj = np.zeros((m, m), dtype=bool)
    for i in range(1, m):
        adj[0, i] = adj[i, 0] = True
    return adj


class TestLegality:
    def test_chain_legal(self):
        adj = chain_adjacency(4)
        assert is_legal_order([0, 1, 2, 3], adj)
        assert is_legal_order([2, 1, 0, 3], adj)  # 3 is adjacent to 2 in the prefix
        assert is_legal_order([1, 0, 2, 3], adj)

    def test_chain_illegal_jump(self):
        adj = chain_adjacency(4)
        assert not is_legal_order([0, 2, 1, 3], adj)  # 2 not adjacent to 0

    def test_star_orders(self):
        adj = star_adjacency(4)
        assert is_legal_order([0, 3, 1, 2], adj)
        assert not is_legal_order([1, 2, 0, 3], adj)  # 2 not adjacent to 1

    def test_empty_order_illegal(self):
        assert not is_legal_order([], chain_adjacency(2))


@pytest.fixture(scope="module")
def trans_jo():
    config = ModelConfig(d_model=16, num_heads=2, decoder_layers=1)
    return TransJO(config, np.random.default_rng(0))


def random_memory(m: int, d: int = 16, seed: int = 0) -> nn.Tensor:
    return nn.Tensor(np.random.default_rng(seed).normal(size=(1, m, d)))


class TestBeamSearch:
    def test_candidates_complete_and_unique(self, trans_jo):
        memory = random_memory(4)
        candidates = beam_search_join_order(trans_jo, memory, chain_adjacency(4), beam_width=2)
        assert candidates
        for candidate in candidates:
            assert sorted(candidate.positions) == [0, 1, 2, 3]
        keys = [tuple(c.positions) for c in candidates]
        assert len(keys) == len(set(keys))

    def test_legality_enforced(self, trans_jo):
        memory = random_memory(5, seed=3)
        adj = chain_adjacency(5)
        candidates = beam_search_join_order(trans_jo, memory, adj, beam_width=3)
        for candidate in candidates:
            assert candidate.legal
            assert is_legal_order(candidate.positions, adj)

    def test_unconstrained_mode_flags_illegal(self, trans_jo):
        memory = random_memory(4, seed=5)
        adj = chain_adjacency(4)
        candidates = beam_search_join_order(
            trans_jo, memory, adj, beam_width=4, enforce_legality=False, max_candidates=32
        )
        assert any(not c.legal for c in candidates) or all(
            is_legal_order(c.positions, adj) for c in candidates
        )
        for candidate in candidates:
            assert candidate.legal == is_legal_order(candidate.positions, adj)

    def test_sorted_by_log_prob(self, trans_jo):
        memory = random_memory(4, seed=7)
        candidates = beam_search_join_order(trans_jo, memory, star_adjacency(4), beam_width=3)
        probs = [c.log_prob for c in candidates]
        assert probs == sorted(probs, reverse=True)

    def test_single_table(self, trans_jo):
        memory = random_memory(1)
        candidates = beam_search_join_order(trans_jo, memory, np.zeros((1, 1), dtype=bool))
        assert candidates[0].positions == [0]
        assert candidates[0].legal

    def test_log_probs_are_valid(self, trans_jo):
        memory = random_memory(3, seed=11)
        candidates = beam_search_join_order(trans_jo, memory, star_adjacency(3), beam_width=2)
        for candidate in candidates:
            assert candidate.log_prob <= 1e-9

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_connected_graph_always_decodable(self, trans_jo, m):
        """Legality must never dead-end on a connected join graph."""
        memory = random_memory(m, seed=m)
        candidates = beam_search_join_order(trans_jo, memory, chain_adjacency(m), beam_width=2)
        assert candidates
        assert all(len(c.positions) == m for c in candidates)

    def test_tables_mapping(self, trans_jo):
        memory = random_memory(3)
        candidates = beam_search_join_order(trans_jo, memory, star_adjacency(3))
        names = candidates[0].tables(["x", "y", "z"])
        assert sorted(names) == ["x", "y", "z"]
