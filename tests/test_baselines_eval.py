"""Tests for the baselines and the evaluation machinery."""

import numpy as np
import pytest

from repro.baselines import PostgresBaseline, TreeLSTMEstimator
from repro.datagen import generate_database
from repro.eval import (
    QErrorStats,
    collect_node_qerrors,
    format_table1,
    format_table2,
    format_table3,
    improvement_ratio,
    join_order_execution_time,
    qerror_stats,
)
from repro.eval.experiments import Table1Row, Table2Row, Table3Row
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=11, num_tables=6, row_range=(80, 300), attr_range=(2, 3))


@pytest.fixture(scope="module")
def labeled(db):
    generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=4, seed=2))
    return QueryLabeler(db).label_many(generator.generate(25), with_optimal_order=True)


class TestMetrics:
    def test_qerror_stats_basic(self):
        stats = qerror_stats([10.0, 10.0], [5.0, 10.0])
        assert stats.median == pytest.approx(1.5)
        assert stats.max == pytest.approx(2.0)
        assert stats.mean == pytest.approx(1.5)
        assert stats.count == 2

    def test_qerror_stats_empty_raises(self):
        with pytest.raises(ValueError):
            qerror_stats([], [])

    def test_qerror_stats_shape_mismatch(self):
        with pytest.raises(ValueError):
            qerror_stats([1.0], [1.0, 2.0])

    def test_improvement_ratio(self):
        assert improvement_ratio(100.0, 30.0) == pytest.approx(0.7)
        assert improvement_ratio(100.0, 100.0) == 0.0

    def test_improvement_ratio_bad_baseline(self):
        with pytest.raises(ValueError):
            improvement_ratio(0.0, 1.0)


class TestPostgresBaseline:
    def test_card_predictions_positive(self, db, labeled):
        baseline = PostgresBaseline(db)
        for item in labeled[:5]:
            cards = baseline.predict_cards(item)
            assert cards.shape == (item.num_nodes,)
            assert (cards >= 0).all()

    def test_cost_calibration_improves_fit(self, db, labeled):
        baseline = PostgresBaseline(db)
        uncalibrated = collect_node_qerrors(labeled, baseline.predict_costs, "cost")
        scale = baseline.calibrate_costs(labeled)
        calibrated = collect_node_qerrors(labeled, baseline.predict_costs, "cost")
        assert scale != 1.0
        assert calibrated.mean <= uncalibrated.mean + 1e-9

    def test_correlated_join_fools_independence(self):
        """The classical estimator's signature failure (the Table 1 story):
        when the filter column correlates with the join key, the
        independence assumption misestimates the join badly while the
        single-table estimate stays accurate."""
        from repro.optimizer import HistogramEstimator
        from repro.sql import parse_query
        from repro.storage import Database, JoinRelation, Table

        n = 1000
        a = Table.from_dict("a", {"id": np.arange(n), "x": np.arange(n)}, primary_key="id")
        # b's foreign keys reference ONLY the ids >= 900; a filter a.x < 100
        # therefore kills the join entirely, but under independence the
        # estimator predicts ~|filtered a| * |b| / ndv.
        b = Table.from_dict("b", {"fk": 900 + np.arange(500) % 100})
        database = Database("corr", [a, b])
        database.add_join(JoinRelation("b", "fk", "a", "id"))
        database.analyze()
        est = HistogramEstimator(database)

        single = parse_query("SELECT COUNT(*) FROM a WHERE a.x < 100")
        single_est = est.estimate(single, frozenset(["a"]))
        single_true = 100.0
        single_err = max(single_est / single_true, single_true / max(single_est, 1e-9))
        assert single_err < 1.5

        join = parse_query("SELECT COUNT(*) FROM a, b WHERE b.fk = a.id AND a.x < 100")
        join_est = est.estimate(join, frozenset(["a", "b"]))
        join_true = 1.0  # actually zero; floored at 1 per convention
        join_err = max(max(join_est, 1.0) / join_true, join_true / max(join_est, 1e-9))
        assert join_err > 10.0


class TestTreeLSTMBaseline:
    def test_fit_reduces_loss(self, db, labeled):
        model = TreeLSTMEstimator(db, hidden_dim=24, seed=0)
        history = model.fit(labeled[:12], epochs=4, seed=0)
        assert history[-1] < history[0]

    def test_predictions_shape(self, db, labeled):
        model = TreeLSTMEstimator(db, hidden_dim=24, seed=0)
        model.fit(labeled[:6], epochs=1)
        cards, costs = model.predict(labeled[0])
        assert cards.shape == (labeled[0].num_nodes,)
        assert costs.shape == (labeled[0].num_nodes,)
        assert (cards > 0).all() and (costs > 0).all()

    def test_beats_untrained(self, db, labeled):
        trained = TreeLSTMEstimator(db, hidden_dim=24, seed=0)
        trained.fit(labeled[:15], epochs=6, seed=0)
        fresh = TreeLSTMEstimator(db, hidden_dim=24, seed=5)

        def error(model):
            total, count = 0.0, 0
            for item in labeled[:10]:
                cards, _ = model.predict(item)
                true = np.maximum(item.node_cardinalities, 1.0)
                total += np.abs(np.log(cards) - np.log(true)).sum()
                count += item.num_nodes
            return total / count

        assert error(trained) < error(fresh)


class TestJoinOrderExecution:
    def test_execution_time_positive(self, db, labeled):
        item = next(i for i in labeled if i.optimal_order is not None)
        time = join_order_execution_time(db, item, item.optimal_order)
        assert time > 0

    def test_optimal_not_worse_than_worst(self, db, labeled):
        from itertools import permutations

        item = next(
            i for i in labeled if i.optimal_order is not None and i.query.num_tables == 3
        )
        times = []
        for perm in permutations(item.query.tables):
            try:
                times.append(join_order_execution_time(db, item, list(perm)))
            except ValueError:
                continue
        optimal_time = join_order_execution_time(db, item, item.optimal_order)
        assert optimal_time <= max(times) + 1e-9


class TestReporting:
    def test_format_table1(self):
        rows = [
            Table1Row("PostgreSQL", card=QErrorStats(10.0, 1000.0, 50.0, 5)),
            Table1Row("MTMLF-QO", card=QErrorStats(2.0, 30.0, 5.0, 5), cost=QErrorStats(1.5, 9.0, 2.0, 5)),
        ]
        text = format_table1(rows)
        assert "PostgreSQL" in text and "MTMLF-QO" in text
        assert "\\" in text  # missing cells rendered like the paper

    def test_format_table2(self):
        rows = [
            Table2Row("PostgreSQL", 1000.0),
            Table2Row("Optimal", 200.0, 0.8),
            Table2Row("MTMLF-QO", 300.0, 0.7, optimal_fraction=0.71),
        ]
        text = format_table2(rows)
        assert "Optimal" in text
        assert "80.0%" in text
        assert "71%" in text

    def test_format_table3(self):
        rows = [Table3Row("PostgreSQL", 500.0), Table3Row("MTMLF-QO (MLA)", 300.0, 0.4)]
        text = format_table3(rows)
        assert "MLA" in text and "40.0%" in text
