"""Tests for the Section 6.2 data-generation pipeline and IMDB-like DB."""

import numpy as np
import pytest

from repro.datagen import (
    AttributeSpec,
    SchemaPlan,
    bootstrap_columns,
    fk_column_name,
    foreign_key_column,
    generate_attribute_columns,
    generate_database,
    generate_databases,
    generate_join_schema,
    imdb_like,
    primary_key_column,
)
from repro.storage import ColumnType, Table


class TestSchemaGen:
    def test_table_count_in_range(self):
        for seed in range(5):
            plan = generate_join_schema(np.random.default_rng(seed))
            assert 6 <= len(plan.tables) <= 11

    def test_fact_dimension_split(self):
        plan = generate_join_schema(np.random.default_rng(0))
        assert 2 <= len(plan.fact_tables) <= 3
        assert len(plan.fact_tables) + len(plan.dimension_tables) == len(plan.tables)

    def test_every_dimension_references_one_or_two_facts(self):
        plan = generate_join_schema(np.random.default_rng(1))
        facts = set(plan.fact_tables)
        for name in plan.dimension_tables:
            targets = plan.table(name).fk_targets
            assert 1 <= len(targets) <= 2
            assert set(targets) <= facts

    def test_fact_chain(self):
        plan = generate_join_schema(np.random.default_rng(2))
        first = plan.fact_tables[0]
        for other in plan.fact_tables[1:]:
            assert first in plan.table(other).fk_targets

    def test_explicit_table_count(self):
        plan = generate_join_schema(np.random.default_rng(0), num_tables=7)
        assert len(plan.tables) == 7

    def test_too_few_tables_rejected(self):
        with pytest.raises(ValueError):
            generate_join_schema(np.random.default_rng(0), num_tables=2)


class TestColumns:
    def test_numeric_skew(self):
        rng = np.random.default_rng(0)
        spec = AttributeSpec("a", "int", domain_size=50, skew=1.8)
        cols, _ = generate_attribute_columns([spec], 5000, rng)
        values = cols[0].values
        # Zipf: the most common value dominates.
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() / 5000 > 0.15

    def test_uniform_when_no_skew(self):
        rng = np.random.default_rng(0)
        spec = AttributeSpec("a", "int", domain_size=10, skew=0.0)
        cols, _ = generate_attribute_columns([spec], 10000, rng)
        _, counts = np.unique(cols[0].values, return_counts=True)
        assert counts.max() / 10000 < 0.2

    def test_correlation_knob(self):
        """Two fully-latent columns must be strongly correlated."""
        rng = np.random.default_rng(0)
        specs = [
            AttributeSpec("x", "int", 100, skew=0.0, correlation=1.0),
            AttributeSpec("y", "int", 100, skew=0.0, correlation=1.0),
        ]
        cols, _ = generate_attribute_columns(specs, 3000, rng)
        r = np.corrcoef(cols[0].values, cols[1].values)[0, 1]
        assert r > 0.95

    def test_independent_when_uncorrelated(self):
        rng = np.random.default_rng(0)
        specs = [
            AttributeSpec("x", "int", 100, skew=0.0, correlation=0.0),
            AttributeSpec("y", "int", 100, skew=0.0, correlation=0.0),
        ]
        cols, _ = generate_attribute_columns(specs, 3000, rng)
        r = np.corrcoef(cols[0].values, cols[1].values)[0, 1]
        assert abs(r) < 0.1

    def test_string_columns(self):
        rng = np.random.default_rng(0)
        spec = AttributeSpec("s", "string", domain_size=20, skew=1.0)
        cols, _ = generate_attribute_columns([spec], 500, rng)
        assert cols[0].ctype is ColumnType.STRING
        assert cols[0].n_distinct() <= 20

    def test_float_columns_have_jitter(self):
        rng = np.random.default_rng(0)
        spec = AttributeSpec("f", "float", domain_size=5, skew=0.0)
        cols, _ = generate_attribute_columns([spec], 100, rng)
        assert cols[0].ctype is ColumnType.FLOAT
        assert cols[0].n_distinct() > 5

    def test_bootstrap_preserves_domain(self):
        source = Table.from_dict("src", {"a": [1, 2, 3], "s": ["x", "y", "z"]})
        cols = bootstrap_columns(source, 50, np.random.default_rng(0))
        assert set(np.unique(cols[0].values)) <= {1, 2, 3}
        assert set(np.unique(cols[1].values.astype(str))) <= {"x", "y", "z"}


class TestKeys:
    def test_primary_key_unique(self):
        pk = primary_key_column(100)
        assert pk.n_distinct() == 100

    def test_fk_domain(self):
        rng = np.random.default_rng(0)
        latent = rng.random(500)
        fk = foreign_key_column("fact", 50, 500, latent, rng)
        assert fk.name == fk_column_name("fact")
        assert fk.values.min() >= 0 and fk.values.max() < 50

    def test_fk_correlates_with_latent(self):
        rng = np.random.default_rng(0)
        latent = rng.random(3000)
        fk = foreign_key_column("fact", 100, 3000, latent, rng, correlation=0.9)
        r = np.corrcoef(latent, fk.values)[0, 1]
        assert r > 0.5

    def test_fk_uncorrelated_when_disabled(self):
        rng = np.random.default_rng(0)
        latent = rng.random(3000)
        fk = foreign_key_column("fact", 100, 3000, latent, rng, correlation=0.0, skew=0.0)
        r = np.corrcoef(latent, fk.values)[0, 1]
        assert abs(r) < 0.1


class TestPipeline:
    def test_database_generates_and_validates(self):
        db = generate_database(seed=0, row_range=(50, 200), attr_range=(2, 4))
        assert 6 <= len(db.table_names) <= 11
        # every FK value must exist in the target PK domain
        for relation in db.join_schema.relations:
            fk_values = db.table(relation.left).column(relation.left_column).values
            target_rows = db.table(relation.right).num_rows
            assert fk_values.min() >= 0 and fk_values.max() < target_rows

    def test_join_graph_connected(self):
        db = generate_database(seed=1, row_range=(50, 200))
        assert db.join_schema.is_connected(db.table_names)

    def test_determinism(self):
        a = generate_database(seed=5, row_range=(50, 150))
        b = generate_database(seed=5, row_range=(50, 150))
        assert a.table_names == b.table_names
        for name in a.table_names:
            np.testing.assert_array_equal(
                a.table(name).column("id").values, b.table(name).column("id").values
            )

    def test_different_seeds_differ(self):
        a = generate_database(seed=0, row_range=(50, 150))
        b = generate_database(seed=99, row_range=(50, 150))
        different = a.table_names != b.table_names or any(
            a.table(n).num_rows != b.table(n).num_rows
            for n in a.table_names
            if n in b.table_names
        )
        assert different or a.total_rows() != b.total_rows()

    def test_generate_fleet(self):
        dbs = generate_databases(3, base_seed=10, row_range=(50, 120))
        assert len(dbs) == 3
        assert len({db.name for db in dbs}) == 3


class TestIMDBLike:
    @pytest.fixture(scope="class")
    def db(self):
        return imdb_like(seed=0, scale=0.05)

    def test_twenty_one_tables(self, db):
        assert len(db.table_names) == 21

    def test_title_is_hub(self, db):
        neighbors = db.join_schema.neighbors("title")
        assert "movie_info" in neighbors
        assert "cast_info" in neighbors
        assert "movie_keyword" in neighbors

    def test_join_graph_connected(self, db):
        assert db.join_schema.is_connected(db.table_names)

    def test_fks_in_domain(self, db):
        for relation in db.join_schema.relations:
            fk = db.table(relation.left).column(relation.left_column).values
            assert fk.max() < db.table(relation.right).num_rows

    def test_has_string_columns_for_like(self, db):
        assert "title" in db.table("title").string_columns()
        assert "info" in db.table("movie_info").string_columns()

    def test_skewed_distribution(self, db):
        """The IMDB stand-in must be skewed (JOB's hazard)."""
        values = db.table("movie_info").column("movie_id").values
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() > 3 * counts.mean()
