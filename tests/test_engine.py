"""Tests for plan trees, operators, the executor, cost and timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    DEFAULT_COST_MODEL,
    DEFAULT_TIMING,
    ExecutionLimitError,
    JoinOp,
    ScanOp,
    equi_join_positions,
    execute_plan,
    join_node,
    left_deep_plan,
    scan_node,
)
from repro.sql import Comparison, CompareOp, Conjunction, Query, parse_query
from repro.storage import Database, JoinRelation, Table


@pytest.fixture
def db():
    """A tiny star schema: orders (fact) -> customers, products (dims)."""
    rng = np.random.default_rng(42)
    n_orders, n_customers, n_products = 500, 50, 20
    customers = Table.from_dict(
        "customers",
        {"id": np.arange(n_customers), "region": rng.integers(0, 5, n_customers)},
        primary_key="id",
    )
    products = Table.from_dict(
        "products",
        {"id": np.arange(n_products), "price": rng.uniform(1, 100, n_products)},
        primary_key="id",
    )
    orders = Table.from_dict(
        "orders",
        {
            "id": np.arange(n_orders),
            "customer_id": rng.integers(0, n_customers, n_orders),
            "product_id": rng.integers(0, n_products, n_orders),
            "quantity": rng.integers(1, 10, n_orders),
        },
        primary_key="id",
    )
    database = Database("shop", [orders, customers, products])
    database.add_join(JoinRelation("orders", "customer_id", "customers", "id"))
    database.add_join(JoinRelation("orders", "product_id", "products", "id"))
    return database


def brute_force_count(db, query) -> int:
    """Reference implementation: nested loops over raw rows."""
    masks = {}
    for t in query.tables:
        table = db.table(t)
        masks[t] = query.filter_for(t).evaluate(table)

    def rows(t):
        return np.flatnonzero(masks[t])

    combos = [{}]
    for t in query.tables:
        combos = [dict(c, **{t: r}) for c in combos for r in rows(t)]
    count = 0
    for combo in combos:
        ok = True
        for j in query.joins:
            lval = db.table(j.left).column(j.left_column).values[combo[j.left]]
            rval = db.table(j.right).column(j.right_column).values[combo[j.right]]
            if lval != rval:
                ok = False
                break
        if ok:
            count += 1
    return count


class TestEquiJoinPositions:
    def test_simple_match(self):
        lp, rp = equi_join_positions(np.array([1, 2, 3]), np.array([2, 3, 4]))
        pairs = set(zip(lp.tolist(), rp.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_many_to_many(self):
        lp, rp = equi_join_positions(np.array([5, 5]), np.array([5, 5, 5]))
        assert len(lp) == 6

    def test_empty_inputs(self):
        lp, rp = equi_join_positions(np.array([]), np.array([1.0]))
        assert len(lp) == 0

    def test_no_matches(self):
        lp, rp = equi_join_positions(np.array([1, 2]), np.array([3, 4]))
        assert len(lp) == 0

    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=30),
        st.lists(st.integers(0, 5), min_size=0, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_nested_loop_reference(self, left, right):
        left, right = np.array(left, dtype=np.int64), np.array(right, dtype=np.int64)
        lp, rp = equi_join_positions(left, right)
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted(
            (i, j) for i in range(len(left)) for j in range(len(right)) if left[i] == right[j]
        )
        assert got == expected


class TestPlanTree:
    def test_scan_node_fields(self):
        node = scan_node("orders")
        assert node.is_scan and not node.is_join
        assert node.tables == frozenset(["orders"])
        assert node.leaf_tables_in_order() == ["orders"]

    def test_join_node_overlap_rejected(self):
        a, b = scan_node("x"), scan_node("x")
        with pytest.raises(ValueError):
            join_node(a, b, [JoinRelation("x", "a", "x", "b")])

    def test_join_node_requires_predicates(self):
        with pytest.raises(ValueError):
            join_node(scan_node("a"), scan_node("b"), [])

    def test_left_deep_plan_structure(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers, products "
            "WHERE orders.customer_id = customers.id AND orders.product_id = products.id"
        )
        plan = left_deep_plan(query, ["orders", "customers", "products"])
        assert plan.is_left_deep()
        assert plan.leaf_tables_in_order() == ["orders", "customers", "products"]
        assert plan.depth() == 3

    def test_left_deep_illegal_order_rejected(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers, products "
            "WHERE orders.customer_id = customers.id AND orders.product_id = products.id"
        )
        with pytest.raises(ValueError):
            left_deep_plan(query, ["customers", "products", "orders"])

    def test_left_deep_wrong_tables_rejected(self, db):
        query = parse_query("SELECT COUNT(*) FROM orders")
        with pytest.raises(ValueError):
            left_deep_plan(query, ["orders", "customers"])

    def test_preorder_postorder(self):
        q = Query(
            tables=["a", "b"],
            joins=[JoinRelation("a", "x", "b", "y")],
        )
        plan = left_deep_plan(q, ["a", "b"])
        pre = plan.nodes_preorder()
        post = plan.nodes_postorder()
        assert pre[0].is_join and post[-1].is_join
        assert len(pre) == len(post) == 3

    def test_pretty_rendering(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        plan = left_deep_plan(query, ["orders", "customers"], join_op=JoinOp.HASH, scan_op=ScanOp.SEQ)
        text = plan.pretty()
        assert "HashJoin" in text and "SeqScan" in text


class TestExecutor:
    def test_single_table_count(self, db):
        query = parse_query("SELECT COUNT(*) FROM orders WHERE orders.quantity >= 5")
        plan = left_deep_plan(query, ["orders"])
        result = execute_plan(plan, db)
        expected = (db.table("orders").column("quantity").values >= 5).sum()
        assert result.cardinality == expected

    def test_two_way_join_matches_brute_force(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers "
            "WHERE orders.customer_id = customers.id AND customers.region = 2"
        )
        plan = left_deep_plan(query, ["orders", "customers"])
        result = execute_plan(plan, db)
        # brute force on a reduced subset for speed: region filter first
        region_customers = np.flatnonzero(db.table("customers").column("region").values == 2)
        expected = np.isin(db.table("orders").column("customer_id").values, region_customers).sum()
        assert result.cardinality == expected

    def test_three_way_join_both_orders_same_cardinality(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers, products "
            "WHERE orders.customer_id = customers.id AND orders.product_id = products.id "
            "AND products.price <= 50"
        )
        r1 = execute_plan(left_deep_plan(query, ["orders", "customers", "products"]), db)
        r2 = execute_plan(left_deep_plan(query, ["products", "orders", "customers"]), db)
        assert r1.cardinality == r2.cardinality

    def test_small_brute_force_agreement(self):
        a = Table.from_dict("a", {"id": [1, 2, 3], "k": [1, 1, 2], "v": [5, 6, 7]})
        b = Table.from_dict("b", {"k": [1, 2, 2], "w": [1.0, 2.0, 3.0]})
        db2 = Database("d", [a, b])
        db2.add_join(JoinRelation("a", "k", "b", "k"))
        query = parse_query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.v >= 6")
        plan = left_deep_plan(query, ["a", "b"])
        result = execute_plan(plan, db2)
        assert result.cardinality == brute_force_count(db2, query)

    def test_node_annotations(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        plan = left_deep_plan(query, ["orders", "customers"])
        result = execute_plan(plan, db)
        assert result.num_nodes == 3
        assert plan.true_cardinality == result.cardinality
        for node in plan.nodes_preorder():
            assert node.true_cardinality is not None

    def test_intermediate_cap(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        plan = left_deep_plan(query, ["orders", "customers"])
        with pytest.raises(ExecutionLimitError):
            execute_plan(plan, db, max_intermediate_rows=10)

    def test_simulated_time_positive_and_additive(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        plan = left_deep_plan(query, ["orders", "customers"], join_op=JoinOp.HASH)
        result = execute_plan(plan, db)
        assert result.simulated_ms > 0
        assert result.simulated_ms == pytest.approx(sum(result.node_times))

    def test_join_op_affects_time_not_result(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        results = {}
        for op in JoinOp:
            plan = left_deep_plan(query, ["orders", "customers"], join_op=op)
            results[op] = execute_plan(plan, db)
        cards = {r.cardinality for r in results.values()}
        assert len(cards) == 1
        assert results[JoinOp.NESTED_LOOP].simulated_ms > results[JoinOp.HASH].simulated_ms


class TestCostModel:
    def test_index_scan_cheaper_when_selective(self):
        cm = DEFAULT_COST_MODEL
        op, _ = cm.best_scan_op(base_rows=100_000, output_rows=10, has_filter=True)
        assert op is ScanOp.INDEX

    def test_seq_scan_cheaper_when_unselective(self):
        cm = DEFAULT_COST_MODEL
        op, _ = cm.best_scan_op(base_rows=100_000, output_rows=90_000, has_filter=True)
        assert op is ScanOp.SEQ

    def test_no_filter_forces_seq(self):
        op, _ = DEFAULT_COST_MODEL.best_scan_op(1000, 1000, has_filter=False)
        assert op is ScanOp.SEQ

    def test_nested_loop_wins_tiny_inputs(self):
        op, _ = DEFAULT_COST_MODEL.best_join_op(2, 2, 4)
        assert op is JoinOp.NESTED_LOOP

    def test_hash_wins_large_inputs(self):
        op, _ = DEFAULT_COST_MODEL.best_join_op(50_000, 40_000, 60_000)
        assert op is JoinOp.HASH

    def test_plan_cost_annotates_ops(self, db):
        query = parse_query(
            "SELECT COUNT(*) FROM orders, customers WHERE orders.customer_id = customers.id"
        )
        plan = left_deep_plan(query, ["orders", "customers"])
        cards = {
            frozenset(["orders"]): 500.0,
            frozenset(["customers"]): 50.0,
            frozenset(["orders", "customers"]): 500.0,
        }
        total = DEFAULT_COST_MODEL.plan_cost(plan, cards, {"orders": 500, "customers": 50})
        assert total > 0
        for node in plan.nodes_preorder():
            assert node.estimated_cost is not None
            if node.is_join:
                assert node.join_op is not None
            else:
                assert node.scan_op is not None

    def test_costs_monotone_in_rows(self):
        cm = DEFAULT_COST_MODEL
        assert cm.scan_cost(1000, 100, ScanOp.SEQ) < cm.scan_cost(10000, 100, ScanOp.SEQ)
        assert cm.join_cost(10, 10, 10, JoinOp.HASH) < cm.join_cost(1000, 1000, 1000, JoinOp.HASH)
