"""Tests for nn layers, attention, transformers, LSTMs, optimizers, losses."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import functional as F


RNG = np.random.default_rng(11)


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_linear_batched_input(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(RNG.normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 4, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_learns_xor(self):
        """A tiny MLP must be able to fit XOR — end-to-end training check."""
        rng = np.random.default_rng(3)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        mlp = nn.MLP([2, 16, 1], rng=rng)
        opt = nn.Adam(mlp.parameters(), lr=3e-2)
        for _ in range(400):
            opt.zero_grad()
            pred = mlp(nn.Tensor(x)).reshape(4)
            loss = nn.mse_loss(pred, y)
            loss.backward()
            opt.step()
        final = mlp(nn.Tensor(x)).reshape(4).data
        assert np.abs(final - y).max() < 0.1

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            nn.MLP([4])


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = nn.LayerNorm(8)
        out = ln(nn.Tensor(RNG.normal(loc=5.0, scale=3.0, size=(4, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gradients_flow(self):
        ln = nn.LayerNorm(6)
        x = nn.Tensor(RNG.normal(size=(3, 6)), requires_grad=True)
        (ln(x) * ln(x)).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None


class TestEmbeddingDropout:
    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_embedding_out_of_range(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_embedding_grad_accumulates(self):
        emb = nn.Embedding(6, 3)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2 * np.ones(3))

    def test_dropout_eval_is_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = nn.Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = nn.Tensor(np.ones((100, 100)), requires_grad=True)
        out = drop(x)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0 * np.ones_like(kept))

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestModuleMechanics:
    def test_named_parameters_nested(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.LayerNorm(4), nn.Linear(4, 2))
        names = [n for n, _ in model.named_parameters()]
        assert "steps.items.0.weight" in names
        assert "steps.items.1.gamma" in names

    def test_state_dict_roundtrip(self):
        a = nn.MLP([3, 5, 2], rng=np.random.default_rng(1))
        b = nn.MLP([3, 5, 2], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(RNG.normal(size=(4, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_raises(self):
        a = nn.Linear(3, 3)
        b = nn.Linear(4, 4)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_save_load_module(self, tmp_path):
        a = nn.MLP([3, 4, 2], rng=np.random.default_rng(1))
        path = str(tmp_path / "ckpt")
        nn.save_module(a, path)
        b = nn.MLP([3, 4, 2], rng=np.random.default_rng(9))
        nn.load_module(b, path)
        x = nn.Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_train_eval_recursive(self):
        model = nn.Sequential(nn.Dropout(0.3), nn.Linear(2, 2))
        model.eval()
        assert not model.steps[0].training
        model.train()
        assert model.steps[0].training

    def test_save_load_path_symmetric_and_returned(self, tmp_path):
        """np.savez appends .npz; save and load must resolve identically."""
        a = nn.MLP([3, 4, 2], rng=np.random.default_rng(1))
        written = nn.save_module(a, str(tmp_path / "ckpt"))
        assert written == str(tmp_path / "ckpt.npz")
        assert (tmp_path / "ckpt.npz").exists()
        # Saving to an explicit .npz path must not produce ckpt.npz.npz.
        explicit = nn.save_module(a, str(tmp_path / "other.npz"))
        assert explicit == str(tmp_path / "other.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz", "other.npz"]
        # Loading resolves the same way from either spelling.
        for spec in ("ckpt", "ckpt.npz"):
            b = nn.MLP([3, 4, 2], rng=np.random.default_rng(9))
            nn.load_module(b, str(tmp_path / spec))
            x = nn.Tensor(RNG.normal(size=(2, 3)))
            np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_save_module_atomic_no_tmp_leftovers(self, tmp_path):
        a = nn.Linear(3, 3, rng=np.random.default_rng(0))
        nn.save_module(a, str(tmp_path / "m"))
        nn.save_module(a, str(tmp_path / "m"))  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["m.npz"]


class _DictHolder(nn.Module):
    """Regression rig: sub-modules and parameters stored in dicts."""

    def __init__(self):
        super().__init__()
        self.blocks = {
            "beta": nn.Linear(2, 2, rng=np.random.default_rng(1)),
            "alpha": nn.Dropout(0.5),
        }
        self.extras = {"scale": nn.Parameter(np.ones(3))}


class TestDictSubmodules:
    """Modules stored in dict attributes must be traversed like lists
    (they were silently skipped before, so dict-held weights were never
    saved and never switched between train/eval)."""

    def test_named_parameters_traverses_dicts(self):
        holder = _DictHolder()
        names = [n for n, _ in holder.named_parameters()]
        assert names == ["blocks.beta.weight", "blocks.beta.bias", "extras.scale"]

    def test_dict_iteration_order_is_sorted_not_insertion(self):
        holder = _DictHolder()  # inserts "beta" before "alpha"
        reordered = _DictHolder()
        reordered.blocks = dict(sorted(holder.blocks.items()))
        assert [n for n, _ in holder.named_parameters()] == [
            n for n, _ in reordered.named_parameters()
        ]

    def test_state_dict_roundtrip_through_dicts(self):
        a, b = _DictHolder(), _DictHolder()
        a.blocks["beta"].weight.data[:] = 7.0
        a.extras["scale"].data[:] = -2.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.blocks["beta"].weight.data, a.blocks["beta"].weight.data)
        np.testing.assert_array_equal(b.extras["scale"].data, a.extras["scale"].data)

    def test_set_mode_reaches_dict_submodules(self):
        holder = _DictHolder()
        holder.eval()
        assert not holder.blocks["alpha"].training
        holder.train()
        assert holder.blocks["alpha"].training

    def test_database_featurizer_uses_base_traversal(self):
        """The (F) module's encoders dict is covered by the base class."""
        from repro.core import DatabaseFeaturizer, ModelConfig
        from repro.datagen import generate_database

        db = generate_database(seed=1, num_tables=3, row_range=(20, 40), attr_range=(2, 2))
        feat = DatabaseFeaturizer(db, ModelConfig(d_model=16, num_heads=2, encoder_layers=1))
        names = [n for n, _ in feat.named_parameters()]
        assert any(n.startswith("column_embedding.") for n in names)
        for table in db.table_names:
            assert any(n.startswith(f"encoders.{table}.") for n in names)
        feat.eval()
        assert all(not enc.training for enc in feat.encoders.values())


class TestOptimizerStateDict:
    """Adam warm-start state is keyed by parameter name, never position."""

    @staticmethod
    def _fit_step(opt, params):
        for p in params:
            p.grad = np.full_like(p.data, 0.25)
        opt.step()

    def test_state_roundtrip_produces_identical_steps(self):
        a_params = [nn.Parameter(np.zeros(3)), nn.Parameter(np.ones((2, 2)))]
        b_params = [nn.Parameter(np.zeros(3)), nn.Parameter(np.ones((2, 2)))]
        a = nn.Adam([("x", a_params[0]), ("y", a_params[1])], lr=1e-2)
        b = nn.Adam([("x", b_params[0]), ("y", b_params[1])], lr=1e-2)
        for _ in range(3):
            self._fit_step(a, a_params)
        b.load_state_dict(a.state_dict())
        assert b._t == a._t
        for pa, pb in zip(a_params, b_params):  # weights travel separately
            pb.data = pa.data.copy()
        self._fit_step(a, a_params)
        self._fit_step(b, b_params)
        for pa, pb in zip(a_params, b_params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_grown_parameter_set_raises_clear_error(self):
        """The attach_featurizer scenario: state saved before the set grew
        must refuse to load, not silently misalign by position."""
        base = [("shared.w", nn.Parameter(np.zeros(2)))]
        saved = nn.Adam(base, lr=1e-2).state_dict()
        grown = nn.Adam(
            [("featurizer.emb", nn.Parameter(np.zeros(4)))] + base, lr=1e-2
        )
        with pytest.raises(ValueError, match="missing=\\['featurizer.emb'\\]"):
            grown.load_state_dict(saved)

    def test_positional_fallback_detects_mismatch(self):
        saved = nn.Adam([nn.Parameter(np.zeros(2))]).state_dict()
        grown = nn.Adam([nn.Parameter(np.zeros(2)), nn.Parameter(np.zeros(3))])
        with pytest.raises(ValueError, match="does not match"):
            grown.load_state_dict(saved)

    def test_shape_mismatch_raises(self):
        saved = nn.Adam([("w", nn.Parameter(np.zeros(2)))]).state_dict()
        other = nn.Adam([("w", nn.Parameter(np.zeros(5)))])
        with pytest.raises(ValueError, match="shape mismatch"):
            other.load_state_dict(saved)

    def test_duplicate_names_rejected(self):
        p = nn.Parameter(np.zeros(1))
        with pytest.raises(ValueError, match="duplicate"):
            nn.Adam([("w", p), ("w", nn.Parameter(np.zeros(1)))])


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        x = nn.Tensor(RNG.normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_dim_head_mismatch(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_causal_mask_blocks_future(self):
        mask = nn.causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 0] and not mask[3, 3]

    def test_padding_mask_ignores_padded_keys(self):
        """Changing a padded position must not change unpadded outputs."""
        attn = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        attn.eval()
        x1 = RNG.normal(size=(1, 4, 8))
        x2 = x1.copy()
        x2[0, 3] = RNG.normal(size=8)  # perturb the padded slot
        pad = np.array([[False, False, False, True]])
        out1 = attn(nn.Tensor(x1), key_padding_mask=pad).data
        out2 = attn(nn.Tensor(x2), key_padding_mask=pad).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)

    def test_fully_masked_row_no_nan(self):
        attn = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        pad = np.array([[True, True, True]])
        out = attn(nn.Tensor(RNG.normal(size=(1, 3, 8))), key_padding_mask=pad)
        assert np.isfinite(out.data).all()

    def test_gradients_flow_through_attention(self):
        attn = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = nn.Tensor(RNG.normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0


class TestTransformer:
    def test_encoder_shapes(self):
        enc = nn.TransformerEncoder(16, 4, 2, rng=np.random.default_rng(0))
        x = nn.Tensor(RNG.normal(size=(3, 6, 16)))
        assert enc(x).shape == (3, 6, 16)

    def test_decoder_shapes(self):
        dec = nn.TransformerDecoder(16, 4, 2, rng=np.random.default_rng(0))
        tgt = nn.Tensor(RNG.normal(size=(2, 4, 16)))
        mem = nn.Tensor(RNG.normal(size=(2, 7, 16)))
        assert dec(tgt, mem).shape == (2, 4, 16)

    def test_decoder_causality(self):
        """Perturbing future target positions must not change earlier outputs."""
        dec = nn.TransformerDecoder(8, 2, 2, rng=np.random.default_rng(0))
        dec.eval()
        mem = nn.Tensor(RNG.normal(size=(1, 5, 8)))
        tgt1 = RNG.normal(size=(1, 4, 8))
        tgt2 = tgt1.copy()
        tgt2[0, 3] += 10.0
        out1 = dec(nn.Tensor(tgt1), mem).data
        out2 = dec(nn.Tensor(tgt2), mem).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_encoder_trains(self):
        """Encoder + readout can fit a simple aggregate function."""
        rng = np.random.default_rng(5)
        enc = nn.TransformerEncoder(8, 2, 1, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = enc.parameters() + head.parameters()
        opt = nn.Adam(params, lr=1e-2)
        x = rng.normal(size=(16, 3, 8))
        y = x.sum(axis=(1, 2))
        losses = []
        for _ in range(60):
            opt.zero_grad()
            hidden = enc(nn.Tensor(x))
            pred = head(hidden.mean(axis=1)).reshape(16)
            loss = nn.mse_loss(pred, y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.25


class TestLSTM:
    def test_lstm_shapes(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        out = lstm(nn.Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_tree_lstm_leaf_and_internal(self):
        tree = nn.ChildSumTreeLSTM(4, 6, rng=np.random.default_rng(0))
        features = {0: RNG.normal(size=(1, 4)), 1: RNG.normal(size=(1, 4)), 2: RNG.normal(size=(1, 4))}
        children = {2: [0, 1]}
        h = tree.encode_tree(features, children, root=2)
        assert h.shape == (1, 6)

    def test_tree_lstm_depends_on_children(self):
        tree = nn.ChildSumTreeLSTM(3, 5, rng=np.random.default_rng(0))
        base = {0: np.ones((1, 3)), 1: np.ones((1, 3)), 2: np.ones((1, 3))}
        other = {0: np.ones((1, 3)) * 2.0, 1: np.ones((1, 3)), 2: np.ones((1, 3))}
        h1 = tree.encode_tree(base, {2: [0, 1]}, root=2)
        h2 = tree.encode_tree(other, {2: [0, 1]}, root=2)
        assert np.abs(h1.data - h2.data).max() > 1e-6


class TestOptimizers:
    def _quadratic_descent(self, make_opt) -> float:
        w = nn.Parameter(np.array([5.0, -3.0]))
        opt = make_opt([w])
        for _ in range(200):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        return float(np.abs(w.data).max())

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda p: nn.SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda p: nn.Adam(p, lr=0.2)) < 1e-2

    def test_clip_grad_norm(self):
        w = nn.Parameter(np.zeros(3))
        w.grad = np.array([3.0, 4.0, 0.0])
        norm = nn.clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(w.grad), 1.0)

    def test_clip_noop_below_threshold(self):
        w = nn.Parameter(np.zeros(2))
        w.grad = np.array([0.3, 0.4])
        nn.clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, [0.3, 0.4])


class TestLosses:
    def test_q_error_always_geq_one(self):
        q = nn.q_error(np.array([10.0, 2.0, 5.0]), np.array([5.0, 20.0, 5.0]))
        assert (q >= 1.0).all()
        np.testing.assert_allclose(q, [2.0, 10.0, 1.0])

    def test_q_error_floor_clamps_small_values(self):
        # Cardinalities below the floor are treated as the floor (standard
        # CardEst convention: zero-result queries count as cardinality 1).
        q = nn.q_error(np.array([0.1]), np.array([1.0]))
        np.testing.assert_allclose(q, [1.0])

    def test_q_error_symmetry(self):
        a, b = np.array([20.0]), np.array([4.0])
        np.testing.assert_allclose(nn.q_error(a, b), nn.q_error(b, a))

    def test_q_error_loss_zero_at_truth(self):
        true = np.array([10.0, 100.0])
        loss = nn.q_error_loss(nn.Tensor(np.log(true), requires_grad=True), true)
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_q_error_loss_grad(self):
        log_pred = nn.Tensor(np.array([2.0, 3.0]), requires_grad=True)
        nn.q_error_loss(log_pred, np.array([np.e ** 4, np.e ** 1])).backward()
        np.testing.assert_allclose(log_pred.grad, [-0.5, 0.5])

    def test_cross_entropy_perfect_prediction(self):
        logits = nn.Tensor(np.array([[100.0, 0.0, 0.0]]), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = nn.Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_mask(self):
        logits = nn.Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([1, 2]), mask=np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_empty_mask_raises(self):
        logits = nn.Tensor(np.zeros((2, 4)), requires_grad=True)
        with pytest.raises(ValueError):
            nn.cross_entropy(logits, np.array([1, 2]), mask=np.zeros(2))

    def test_kl_divergence_zero_when_matched(self):
        target = np.array([[0.5, 0.5, 0.0]])
        logits = nn.Tensor(np.log(np.array([[0.5, 0.5, 1e-12]])), requires_grad=True)
        loss = nn.kl_divergence(logits, target)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_kl_divergence_positive(self):
        target = np.array([[1.0, 0.0]])
        logits = nn.Tensor(np.zeros((1, 2)), requires_grad=True)
        assert nn.kl_divergence(logits, target).item() > 0.1


class TestPositional:
    def test_sinusoidal_shape_and_bounds(self):
        enc = nn.sinusoidal_encoding(10, 8)
        assert enc.shape == (10, 8)
        assert np.abs(enc).max() <= 1.0

    def test_sinusoidal_odd_dim_raises(self):
        with pytest.raises(ValueError):
            nn.sinusoidal_encoding(4, 7)

    def test_tree_position_navigation(self):
        root = nn.TreePosition()
        assert root.left().path == (0,)
        assert root.left().right().path == (0, 1)
        assert root.left().right().depth == 2

    def test_tree_position_invalid_step(self):
        with pytest.raises(ValueError):
            nn.TreePosition((2,))

    def test_tree_path_encoding_distinguishes_siblings(self):
        left = nn.tree_path_encoding(nn.TreePosition((0,)), 8)
        right = nn.tree_path_encoding(nn.TreePosition((1,)), 8)
        assert np.abs(left - right).max() > 0

    def test_tree_path_encoding_root_is_zero(self):
        np.testing.assert_allclose(nn.tree_path_encoding(nn.TreePosition(), 8), np.zeros(8))
