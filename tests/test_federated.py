"""Tests for federated MLA (the paper's Section 7 research opportunity)."""

import numpy as np
import pytest

from repro.core import (
    AggregationError,
    FederatedClient,
    FederatedConfig,
    FederatedTrainer,
    JointTrainer,
    ModelConfig,
    MTMLFQO,
    SHARED_MODULE_PREFIXES,
    aggregate_shared_states,
)
from repro.datagen import generate_databases
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

TINY = ModelConfig(d_model=16, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)
FED = FederatedConfig(rounds=2, local_epochs=1, encoder_queries_per_table=3, encoder_epochs=1)


@pytest.fixture(scope="module")
def clients():
    dbs = generate_databases(3, base_seed=70, row_range=(60, 200), attr_range=(2, 3))
    out = []
    for i, db in enumerate(dbs):
        generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=i))
        workload = QueryLabeler(db).label_many(generator.generate(10), with_optimal_order=True)
        out.append(FederatedClient(db=db, workload=workload))
    return out


class TestFederatedTraining:
    def test_rounds_run_and_losses_finite(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        losses = trainer.train(clients[:2])
        assert len(losses) == FED.rounds
        assert all(np.isfinite(l) for l in losses)

    def test_server_weights_change(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        before = {k: v.copy() for k, v in trainer.server_model.state_dict().items()}
        trainer.train(clients[:2])
        after = trainer.server_model.state_dict()
        changed = any(not np.array_equal(before[k], after[k]) for k in before)
        assert changed

    def test_featurizers_stay_local(self, clients):
        """Only (S)/(T) travel: featurizer parameters are never averaged."""
        trainer = FederatedTrainer(TINY, FED)
        trainer.train(clients[:2])
        feat_a = clients[0].featurizer
        feat_b = clients[1].featurizer
        names_a = {n for n, _ in feat_a.named_parameters()}
        server_names = {n for n, _ in trainer.server_model.named_parameters()}
        assert not any(name in server_names for name in names_a)
        # Different clients keep genuinely different featurizers.
        assert feat_a is not feat_b

    def test_aggregate_is_weighted_mean(self):
        trainer = FederatedTrainer(TINY, FED)
        base = trainer.server_model.state_dict()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        trainer._aggregate([state_a, state_b], weights=[1.0, 3.0])
        merged = trainer.server_model.state_dict()
        for value in merged.values():
            np.testing.assert_allclose(value, 0.75)

    def test_transfer_to_new_db(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        trainer.train(clients[:2])
        new_client = clients[2]
        trainer.transfer(new_client.db)
        item = new_client.workload[0]
        order = trainer.server_model.predict_join_order(new_client.db.name, item)
        assert sorted(order) == sorted(item.query.tables)

    def test_empty_clients_rejected(self):
        trainer = FederatedTrainer(TINY, FED)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_empty_workload_rejected(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        broken = FederatedClient(db=clients[0].db, workload=[])
        with pytest.raises(ValueError):
            trainer.train([broken])

    def test_single_client_round_matches_local_training(self, clients):
        """One client, one round: FedAvg degenerates to plain local
        training — bit-identical to a JointTrainer run from the same
        starting weights with the same seed."""
        fed = FederatedConfig(rounds=1, local_epochs=1, encoder_queries_per_table=3, encoder_epochs=1)
        trainer = FederatedTrainer(TINY, fed)
        client = clients[0]
        initial = {k: v.copy() for k, v in trainer.server_model.state_dict().items()}
        trainer.train([client])

        reference = MTMLFQO(TINY)
        reference.attach_featurizer(client.db.name, client.featurizer)
        reference.load_state_dict(initial)
        JointTrainer(reference).train(
            [(client.db.name, item) for item in client.workload],
            epochs=fed.local_epochs,
            batch_size=fed.batch_size,
            seed=fed.seed,
        )
        server = trainer.server_model.state_dict()
        for name, value in reference.state_dict().items():
            np.testing.assert_array_equal(server[name], value, err_msg=name)

    def test_client_optimizer_state_persists_across_rounds(self, clients):
        """Round 2 resumes each client's Adam moments (name-keyed) rather
        than re-warming from zero: the step counter keeps counting."""
        fed = FederatedConfig(rounds=2, local_epochs=1, encoder_queries_per_table=3, encoder_epochs=1)
        trainer = FederatedTrainer(TINY, fed)
        trainer.train(clients[:1])
        saved = trainer._client_optimizer_state[clients[0].db.name]
        # 10 examples / batch 16 = 1 step per epoch, 1 epoch per round,
        # 2 rounds: a fresh-Adam-per-round rebuild would end at t == 1.
        assert saved["t"] == 2
        assert all(key.startswith(SHARED_MODULE_PREFIXES) for key in saved["m"])


class TestSharedAggregation:
    def _server_state(self):
        return MTMLFQO(TINY).state_dict()

    def test_private_keys_are_never_merged(self):
        """Per-client featurizer entries are ignored by name, not
        averaged (the "(F) is never shared" contract) — and differing
        private key sets across clients cannot break the merge."""
        base = self._server_state()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        state_a["featurizers.db_a.column_embedding.weight"] = np.full((3, 2), 7.0)
        state_b["featurizers.db_b.encoders.t1.weight"] = np.full((5,), 9.0)
        merged = aggregate_shared_states([state_a, state_b], [1.0, 1.0], reference=base)
        assert set(merged) == set(base)
        for value in merged.values():
            np.testing.assert_allclose(value, 0.5)

    def test_missing_shared_key_raises(self):
        base = self._server_state()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        dropped = sorted(base)[0]
        del state_b[dropped]
        with pytest.raises(AggregationError, match="client 1.*missing"):
            aggregate_shared_states([state_a, state_b], [1.0, 1.0], reference=base)

    def test_shape_mismatch_raises(self):
        base = self._server_state()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        mangled = sorted(base)[0]
        state_b[mangled] = np.ones(np.asarray(base[mangled]).size + 1)
        with pytest.raises(AggregationError, match="shape mismatch"):
            aggregate_shared_states([state_a, state_b], [1.0, 1.0], reference=base)

    def test_malformed_inputs_raise(self):
        base = self._server_state()
        state = {k: np.zeros_like(v) for k, v in base.items()}
        with pytest.raises(AggregationError, match="no client states"):
            aggregate_shared_states([], [], reference=base)
        with pytest.raises(AggregationError, match="weights"):
            aggregate_shared_states([state], [1.0, 2.0], reference=base)
        with pytest.raises(AggregationError, match="positive"):
            aggregate_shared_states([state], [0.0], reference=base)
        with pytest.raises(AggregationError, match="no shared"):
            aggregate_shared_states([{"private.w": np.ones(2)}], [1.0])

    def test_weighted_mean_with_reference(self):
        base = self._server_state()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        merged = aggregate_shared_states([state_a, state_b], [1.0, 3.0], reference=base)
        for value in merged.values():
            np.testing.assert_allclose(value, 0.75)
