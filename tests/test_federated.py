"""Tests for federated MLA (the paper's Section 7 research opportunity)."""

import numpy as np
import pytest

from repro.core import (
    FederatedClient,
    FederatedConfig,
    FederatedTrainer,
    ModelConfig,
)
from repro.datagen import generate_databases
from repro.workload import QueryLabeler, WorkloadConfig, WorkloadGenerator

TINY = ModelConfig(d_model=16, num_heads=2, encoder_layers=1, shared_layers=1, decoder_layers=1)
FED = FederatedConfig(rounds=2, local_epochs=1, encoder_queries_per_table=3, encoder_epochs=1)


@pytest.fixture(scope="module")
def clients():
    dbs = generate_databases(3, base_seed=70, row_range=(60, 200), attr_range=(2, 3))
    out = []
    for i, db in enumerate(dbs):
        generator = WorkloadGenerator(db, WorkloadConfig(min_tables=2, max_tables=3, seed=i))
        workload = QueryLabeler(db).label_many(generator.generate(10), with_optimal_order=True)
        out.append(FederatedClient(db=db, workload=workload))
    return out


class TestFederatedTraining:
    def test_rounds_run_and_losses_finite(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        losses = trainer.train(clients[:2])
        assert len(losses) == FED.rounds
        assert all(np.isfinite(l) for l in losses)

    def test_server_weights_change(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        before = {k: v.copy() for k, v in trainer.server_model.state_dict().items()}
        trainer.train(clients[:2])
        after = trainer.server_model.state_dict()
        changed = any(not np.array_equal(before[k], after[k]) for k in before)
        assert changed

    def test_featurizers_stay_local(self, clients):
        """Only (S)/(T) travel: featurizer parameters are never averaged."""
        trainer = FederatedTrainer(TINY, FED)
        trainer.train(clients[:2])
        feat_a = clients[0].featurizer
        feat_b = clients[1].featurizer
        names_a = {n for n, _ in feat_a.named_parameters()}
        server_names = {n for n, _ in trainer.server_model.named_parameters()}
        assert not any(name in server_names for name in names_a)
        # Different clients keep genuinely different featurizers.
        assert feat_a is not feat_b

    def test_aggregate_is_weighted_mean(self):
        trainer = FederatedTrainer(TINY, FED)
        base = trainer.server_model.state_dict()
        state_a = {k: np.zeros_like(v) for k, v in base.items()}
        state_b = {k: np.ones_like(v) for k, v in base.items()}
        trainer._aggregate([state_a, state_b], weights=[1.0, 3.0])
        merged = trainer.server_model.state_dict()
        for value in merged.values():
            np.testing.assert_allclose(value, 0.75)

    def test_transfer_to_new_db(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        trainer.train(clients[:2])
        new_client = clients[2]
        trainer.transfer(new_client.db)
        item = new_client.workload[0]
        order = trainer.server_model.predict_join_order(new_client.db.name, item)
        assert sorted(order) == sorted(item.query.tables)

    def test_empty_clients_rejected(self):
        trainer = FederatedTrainer(TINY, FED)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_empty_workload_rejected(self, clients):
        trainer = FederatedTrainer(TINY, FED)
        broken = FederatedClient(db=clients[0].db, workload=[])
        with pytest.raises(ValueError):
            trainer.train([broken])
