"""The timing-aligned cost model must equal the executor's timing.

The "Optimal" rows of Tables 2/3 are only meaningful if the DP's
objective matches what the evaluation measures; these tests pin the
formula equivalence operator by operator.
"""

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_TIMING,
    JoinOp,
    ScanOp,
    TimingAlignedCostModel,
    execute_plan,
    left_deep_plan,
    scan_node,
)
from repro.engine.operators import WorkReport
from repro.sql import parse_query
from repro.storage import Database, JoinRelation, Table


@pytest.fixture(scope="module")
def model():
    return TimingAlignedCostModel(DEFAULT_TIMING)


class TestFormulaEquivalence:
    def test_seq_scan(self, model):
        report = WorkReport(tuples_scanned=1000, tuples_emitted=400)
        measured = DEFAULT_TIMING.scan_time(report, used_index=False)
        assert model.scan_cost(1000, 400, ScanOp.SEQ) == pytest.approx(measured)

    def test_index_scan(self, model):
        report = WorkReport(tuples_scanned=40, tuples_emitted=40, extra={"index_lookups": 1})
        measured = DEFAULT_TIMING.scan_time(report, used_index=True)
        assert model.scan_cost(1000, 40, ScanOp.INDEX) == pytest.approx(measured)

    def test_hash_join(self, model):
        report = WorkReport(tuples_built=100, tuples_probed=900, tuples_emitted=300)
        measured = DEFAULT_TIMING.join_time(report)
        assert model.join_cost(900, 100, 300, JoinOp.HASH) == pytest.approx(measured)

    def test_merge_join(self, model):
        report = WorkReport(tuples_sorted=500, tuples_probed=500, tuples_emitted=120)
        measured = DEFAULT_TIMING.join_time(report)
        assert model.join_cost(300, 200, 120, JoinOp.MERGE) == pytest.approx(measured)

    def test_nested_loop(self, model):
        report = WorkReport(pairs_examined=300 * 200, tuples_emitted=50)
        measured = DEFAULT_TIMING.join_time(report)
        assert model.join_cost(300, 200, 50, JoinOp.NESTED_LOOP) == pytest.approx(measured)


class TestEndToEndAlignment:
    def test_plan_cost_equals_simulated_time(self, model):
        """DP cost with true cards + fixed ops == executed simulated ms."""
        rng = np.random.default_rng(0)
        a = Table.from_dict(
            "a", {"id": np.arange(300), "k": rng.integers(0, 40, 300), "v": rng.normal(size=300)}
        )
        b = Table.from_dict("b", {"k": rng.integers(0, 40, 200)})
        db = Database("align", [a, b])
        db.add_join(JoinRelation("a", "k", "b", "k"))
        db.analyze()
        query = parse_query("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.v > 0")
        plan = left_deep_plan(query, ["a", "b"], join_op=JoinOp.HASH, scan_op=ScanOp.SEQ)
        result = execute_plan(plan, db)

        cards = {
            node.tables: float(node.true_cardinality) for node in plan.nodes_preorder()
        }
        base = {"a": 300.0, "b": 200.0}
        cost = model.plan_cost(plan, cards, base)
        assert cost == pytest.approx(result.simulated_ms, rel=1e-9)
